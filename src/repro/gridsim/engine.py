"""Generator-core engine: the request protocol and the single-threaded loop.

Rank programs are written as Python *generators*: every potentially blocking
operation (``recv`` on an empty mailbox, an incomplete collective rendezvous,
a voluntary ``yield_turn``) suspends the program by ``yield``-ing a small
request object to whoever drives the generator.  Two drivers exist:

* :class:`CoroutineScheduler` — the default backend.  One ordinary Python
  loop owns the virtual-clock ready heap and resumes one rank generator at a
  time; a blocked rank is literally a suspended generator in a dict.  There
  are no OS threads, no semaphores, no GIL hand-offs — resuming a rank is a
  single ``gen.send(None)``.
* :func:`drive_on_thread` — the reference backend.  Each rank generator is
  driven by its own cooperative thread (the pre-existing
  :class:`~repro.gridsim.scheduler.VirtualTimeScheduler` machinery): a
  yielded request is translated into the corresponding blocking scheduler
  call (``park`` / ``yield_turn``) on that thread.

The request protocol is deliberately tiny:

* ``Park(kind, key, detail)`` — suspend until another rank produces the
  event ``(kind, key)`` (a matching ``unpark``).  ``detail`` is the
  human-readable wait description used by the deadlock wait graph — a
  string, or a zero-arg callable formatted lazily at deadlock detection
  (parking is on the per-event hot path; deadlocks are not).
* ``SWITCH`` — hand the CPU back voluntarily and resume in virtual-clock
  order (the cooperative ``yield_turn``).

Both backends make every scheduling decision with the *same* data
structures (ready heap + one-element direct slot, waiter table keyed by
``(kind, key)``, wake re-keyed by the woken rank's current clock) and the
same tie-breaking (minimum ``(virtual clock, rank id)``), so the event
order — and therefore the trace, the clocks and the makespan — is a pure
function of the program and bit-identical across backends.  The
equivalence suite (``tests/gridsim/test_engine_equivalence.py``) pins this.
"""

from __future__ import annotations

import gc
import heapq
from types import GeneratorType
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

from repro.exceptions import DeadlockError
from repro.gridsim.failures import _RankDeath
from repro.gridsim.scheduler import (
    RankStatus,
    WaitInfo,
    format_deadlock,
    raise_if_aborted,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (platform -> engine)
    from repro.gridsim.platform import SimulationState

__all__ = ["Park", "SWITCH", "drive_on_thread", "CoroutineScheduler"]


class Park:
    """Request: suspend the yielding rank until ``(kind, key)`` is produced.

    The driving backend registers the rank in its waiter table and resumes
    the generator only after a matching
    ``scheduler.unpark(kind, key)`` — or immediately when the simulation
    has aborted, in which case the resumed code re-checks the abort flag
    and raises (exactly the contract of the blocking ``park`` call the
    threads backend maps this onto).
    """

    __slots__ = ("kind", "key", "detail")

    def __init__(self, kind: str, key: Hashable, detail: object) -> None:
        self.kind = kind
        self.key = key
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Park(kind={self.kind!r}, key={self.key!r})"


class _Switch:
    """Singleton request: yield the CPU and resume in virtual-clock order."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SWITCH"


#: The one voluntary-yield request (identity-compared by the drivers).
SWITCH = _Switch()


def drive_on_thread(gen: GeneratorType, scheduler, rank: int) -> object:
    """Drive a rank generator to completion on the calling (rank) thread.

    The reference backend: each yielded request becomes the corresponding
    blocking call on the thread-based
    :class:`~repro.gridsim.scheduler.VirtualTimeScheduler`, so the thread
    suspends exactly where the coroutine backend would suspend the
    generator.  Returns the program's return value.
    """
    try:
        req = gen.send(None)
        while True:
            if req is SWITCH:
                scheduler.yield_turn(rank)
            else:
                scheduler.park(rank, req.kind, req.key, req.detail)
            req = gen.send(None)
    except StopIteration as stop:
        return stop.value


class CoroutineScheduler:
    """Single-threaded event loop driving every rank as a suspended generator.

    Mirrors :class:`~repro.gridsim.scheduler.VirtualTimeScheduler` decision
    for decision — same ready heap keyed by ``(clock, rank)``, same
    one-element direct-dispatch slot, same waiter table, same wake-re-keying
    — but replaces the semaphore handoff with ``gen.send(None)``.  Resuming
    a rank costs one generator switch instead of two OS context switches,
    which is where the 20x+ events/s of the coroutine backend comes from.

    The scheduler exposes the same surface the communicator and the
    simulation state use on the threads scheduler (:meth:`unpark`,
    :meth:`wake_all_blocked`, :meth:`check_abort`, :meth:`status`); the
    blocking entry points (``park`` / ``yield_turn`` / ``wait_for_turn``)
    do not exist here — their work is done by the loop when a generator
    yields ``Park`` / ``SWITCH``.
    """

    def __init__(self, ranks: Sequence[int], state: "SimulationState") -> None:
        self._state = state
        self._ranks = tuple(int(r) for r in ranks)
        #: Flat per-rank tables indexed by world rank (never-scheduled ranks
        #: sit at DONE): list indexing beats dict hashing on the per-event
        #: hot path.
        n_slots = (max(self._ranks) + 1) if self._ranks else 0
        self._status: list[RankStatus] = [RankStatus.DONE] * n_slots
        for r in self._ranks:
            self._status[r] = RankStatus.READY
        #: rank -> its pending wait (a Park, which duck-types WaitInfo).
        self._waiting: dict[int, WaitInfo | Park] = {}
        self._waiters: dict[tuple[str, Hashable], list[int]] = {}
        #: Ready heap: (virtual clock at enqueue time, rank); ties broken by
        #: rank id — identical to the threads scheduler.
        self._ready: list[tuple[float, int]] = [(0.0, r) for r in sorted(self._ranks)]
        heapq.heapify(self._ready)
        #: Direct-dispatch slot: at most one READY rank held outside the heap
        #: (fast path for send-wakes-one-receiver and for yields).
        self._direct: tuple[float, int] | None = None
        self._started: set[int] = set()
        self._gens: list[GeneratorType | None] = [None] * n_slots
        #: Streaming-stats window ticks: one float compare per dispatch when
        #: streaming is on, a compare against +inf when it is off.  Pure
        #: observer (max-only horizon update) — never affects pop order.
        stats = state.trace.stats
        self._obs = stats
        self._obs_tick = stats.next_tick if stats is not None else float("inf")

    # ------------------------------------------------------------ main loop
    def run(
        self,
        start: Callable[[int], object],
        on_result: Callable[[int, object], None],
        on_error: Callable[[int, BaseException], None],
    ) -> None:
        """Run every rank to completion (or until the simulation aborts).

        ``start(rank)`` invokes the rank program and returns either a plain
        value (a program that never blocks: it is complete) or a generator
        (driven by this loop).  ``on_result`` / ``on_error`` receive each
        rank's return value or exception; after a failure the remaining
        started ranks are resumed so they observe the abort flag and raise,
        while never-started ranks are skipped entirely — matching the
        threads backend's rank lifecycle exactly.
        """
        state = self._state
        status = self._status
        gens = self._gens
        # Pause the cyclic GC for the duration of the loop: the engine
        # allocates only acyclic, refcount-reclaimed objects (requests,
        # payload tuples, trace rows), but the generational collector keeps
        # re-scanning the thousands of suspended generator frames it can see
        # — ~30% of wall time at 2048 ranks.  Collection is deferred, not
        # skipped: the previous enable state is restored on exit.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            self._run(state, status, gens, start, on_result, on_error)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self, state, status, gens, start, on_result, on_error) -> None:
        while True:
            rank = self._pop_min_ready()
            if rank is None:
                blocked = [r for r in self._ranks if status[r] is RankStatus.BLOCKED]
                if not blocked:
                    return
                if not state.aborted:
                    self._deadlock(blocked)
                # Resume every released rank so it can observe the abort.
                self.wake_all_blocked()
                continue
            status[rank] = RankStatus.RUNNING
            try:
                gen = gens[rank]
                if gen is None:
                    if rank not in self._started:
                        self._started.add(rank)
                        if state.aborted:
                            # A failure elsewhere: never start this program
                            # (the threads backend's post-wait abort check).
                            self._finish(rank)
                            continue
                        out = start(rank)
                        if not isinstance(out, GeneratorType):
                            on_result(rank, out)
                            self._finish(rank)
                            continue
                        gens[rank] = gen = out
                    else:  # pragma: no cover - defensive; finished ranks stay DONE
                        self._finish(rank)
                        continue
                while True:
                    req = gen.send(None)
                    if state.aborted:
                        # Mirror the blocking calls' immediate return under
                        # abort: resume at once so the program's abort
                        # re-check raises.
                        continue
                    if req is SWITCH:
                        status[rank] = RankStatus.READY
                        self._enqueue_ready((state.clock(rank), rank))
                    else:
                        status[rank] = RankStatus.BLOCKED
                        # The Park duck-types WaitInfo (kind/key/detail): store
                        # it directly instead of allocating a copy per park.
                        self._waiting[rank] = req
                        self._waiters.setdefault((req.kind, req.key), []).append(rank)
                    break
            except StopIteration as stop:
                gens[rank] = None
                on_result(rank, stop.value)
                self._finish(rank)
            except _RankDeath:
                # Injected death: retire the rank quietly — no result, no
                # error, no abort.  Survivors keep running; their next
                # operation on a communicator containing this rank raises
                # RankFailedError.
                gens[rank] = None
                self._finish(rank)
            except BaseException as exc:  # noqa: BLE001 - surfaced by the executor
                gens[rank] = None
                on_error(rank, exc)
                state.fail(exc)
                self._finish(rank)

    def _finish(self, rank: int) -> None:
        self._status[rank] = RankStatus.DONE
        self._waiting.pop(rank, None)

    # ---------------------------------------------------------- ready queue
    def _enqueue_ready(self, entry: tuple[float, int]) -> None:
        """Insert a READY rank's ``(clock, rank)`` into the runnable set.

        Same slot-or-heap policy as the threads scheduler, so the pop order
        (and thus the trace) is identical.
        """
        direct = self._direct
        if direct is None and (not self._ready or entry < self._ready[0]):
            self._direct = entry
        elif direct is not None and entry < direct:
            heapq.heappush(self._ready, direct)
            self._direct = entry
        else:
            heapq.heappush(self._ready, entry)

    def _pop_min_ready(self) -> int | None:
        """Pop the READY rank with the minimum ``(clock, rank)``, or None."""
        while True:
            direct = self._direct
            top = self._ready[0] if self._ready else None
            if direct is not None and (top is None or direct < top):
                self._direct = None
                entry = direct
            elif top is not None:
                entry = heapq.heappop(self._ready)
            else:
                return None
            rank = entry[1]
            if self._status[rank] is RankStatus.READY:
                if entry[0] >= self._obs_tick:
                    self._obs_tick = self._obs.on_tick(entry[0])
                return rank

    # ----------------------------------------------- shared scheduler surface
    def unpark(self, kind: str, key: Hashable) -> None:
        """Make every rank parked on ``(kind, key)`` runnable again.

        Called synchronously from within a running rank (a ``send`` waking a
        receiver, a completing collective); the woken ranks re-enter the
        ready set keyed by their *current* virtual clock, exactly as on the
        threads backend.
        """
        ranks = self._waiters.pop((kind, key), None)
        if not ranks:
            return
        clock_of = self._state.clock
        status = self._status
        for rank in ranks:
            if status[rank] is not RankStatus.BLOCKED:
                continue
            status[rank] = RankStatus.READY
            self._waiting.pop(rank, None)
            self._enqueue_ready((clock_of(rank), rank))

    def wake_all_blocked(self) -> None:
        """Move every parked rank to READY so it can observe the abort flag."""
        clock_of = self._state.clock
        status = self._status
        for rank in self._ranks:
            if status[rank] is RankStatus.BLOCKED:
                status[rank] = RankStatus.READY
                self._waiting.pop(rank, None)
                self._enqueue_ready((clock_of(rank), rank))

    def requeue_blocked(self) -> None:
        """Requeue every parked rank after an injected rank death.

        On this backend a woken rank only ever resumes through the main
        loop, so the selective wake used for aborts is already safe for
        live (non-abort) use; the threads backend needs a separate
        implementation because its abort wake floods semaphores.
        """
        self.wake_all_blocked()

    def status(self, rank: int) -> str:
        """Current lifecycle state of ``rank`` (for tests and debugging)."""
        return self._status[rank]

    def check_abort(self) -> None:
        """Raise if the simulation has failed (deadlock errors keep their type)."""
        raise_if_aborted(self._state)

    # -------------------------------------------------------------- deadlock
    def _deadlock(self, blocked: list[int]) -> None:
        """Fail the simulation with the wait graph of every parked rank."""
        done = sum(1 for r in self._ranks if self._status[r] is RankStatus.DONE)
        message = format_deadlock(blocked, self._waiting, done)
        self._state.record_failure(DeadlockError(message))
