"""Network model: link classes, latency/bandwidth matrix, transfer times.

The grid network is *hierarchical* (paper §II-D): shared-memory links inside
a node, a switched GigaEthernet network inside each cluster, and wide-area
links between clusters whose latency is two orders of magnitude higher.
The paper's Table 3(a) gives the measured latency (ms) and throughput (Mb/s)
between every pair of Grid'5000 sites; this module stores exactly that kind
of matrix and answers the only two questions the simulator asks:

* what *class* of link connects two process locations
  (same process / intra-node / intra-cluster / inter-cluster), and
* how long does an ``n``-byte message take on that link
  (``latency + n / bandwidth`` — the alpha-beta model of paper Eq. (1)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import TopologyError
from repro.util.units import mbits_per_s_to_bytes_per_s, ms_to_seconds, us_to_seconds

__all__ = ["LinkClass", "LinkSpec", "NetworkModel"]


class LinkClass(enum.Enum):
    """Classification of a communication between two processes."""

    SELF = "self"
    INTRA_NODE = "intra-node"
    INTRA_CLUSTER = "intra-cluster"
    INTER_CLUSTER = "inter-cluster"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Stable small-int index per member, in definition order.  The trace keeps
# its per-link counters in flat lists indexed by this (enum ``__hash__`` is a
# Python-level call and message recording is on the per-event hot path).
for _index, _link in enumerate(LinkClass):
    _link.index = _index
del _index, _link


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point link characteristics (alpha-beta model).

    ``latency_s`` is the raw one-way ping latency (what Table 3(a) reports);
    ``per_message_overhead_s`` is an additional per-message software cost
    (MPI rendezvous handshakes, TCP slow-start over the wide-area links, ...)
    that is charged on top of the ping latency by the simulator but *not*
    reported in the Fig. 3 latency matrix, so the platform description stays
    faithful to the published table while the timed simulation reflects the
    effective cost of a WAN message.
    """

    latency_s: float
    bandwidth_bytes_per_s: float
    per_message_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise TopologyError(f"negative latency: {self.latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise TopologyError(f"non-positive bandwidth: {self.bandwidth_bytes_per_s}")
        if self.per_message_overhead_s < 0:
            raise TopologyError(f"negative per-message overhead: {self.per_message_overhead_s}")

    @classmethod
    def from_ms_mbits(
        cls, latency_ms: float, throughput_mbits: float, *, overhead_ms: float = 0.0
    ) -> "LinkSpec":
        """Build a link from Table 3(a) units (latency in ms, throughput in Mb/s)."""
        return cls(
            latency_s=ms_to_seconds(latency_ms),
            bandwidth_bytes_per_s=mbits_per_s_to_bytes_per_s(throughput_mbits),
            per_message_overhead_s=ms_to_seconds(overhead_ms),
        )

    @classmethod
    def from_us_mbits(
        cls, latency_us: float, throughput_mbits: float, *, overhead_us: float = 0.0
    ) -> "LinkSpec":
        """Build a link from a microsecond latency and Mb/s throughput."""
        return cls(
            latency_s=us_to_seconds(latency_us),
            bandwidth_bytes_per_s=mbits_per_s_to_bytes_per_s(throughput_mbits),
            per_message_overhead_s=us_to_seconds(overhead_us),
        )

    def transfer_time(self, nbytes: int | float) -> float:
        """Time in seconds to move ``nbytes`` across this link."""
        if nbytes < 0:
            raise TopologyError(f"negative message size: {nbytes}")
        return (
            self.latency_s
            + self.per_message_overhead_s
            + float(nbytes) / self.bandwidth_bytes_per_s
        )


def _pair_key(a: str, b: str) -> tuple[str, str]:
    """Symmetric dictionary key for a cluster pair."""
    return (a, b) if a <= b else (b, a)


@dataclass
class NetworkModel:
    """Hierarchical network description of a grid.

    Parameters
    ----------
    intra_node:
        Link between two processes on the same node (shared memory).
    intra_cluster:
        Default link between two nodes of the same cluster.  Per-cluster
        overrides can be supplied in ``intra_cluster_overrides``.
    inter_cluster:
        Mapping from unordered cluster-name pairs to the wide-area link that
        connects them.  Pairs may be given in either order.
    inter_cluster_default:
        Fallback link used for cluster pairs absent from ``inter_cluster``
        (``None`` makes missing pairs an error).
    """

    intra_node: LinkSpec
    intra_cluster: LinkSpec
    inter_cluster: dict[tuple[str, str], LinkSpec] = field(default_factory=dict)
    intra_cluster_overrides: dict[str, LinkSpec] = field(default_factory=dict)
    inter_cluster_default: LinkSpec | None = None

    def __post_init__(self) -> None:
        # Normalise inter-cluster keys to their symmetric form.
        normalised: dict[tuple[str, str], LinkSpec] = {}
        for (a, b), link in self.inter_cluster.items():
            normalised[_pair_key(a, b)] = link
        self.inter_cluster = normalised

    # ------------------------------------------------------------------ api
    def classify(
        self,
        cluster_a: str,
        node_a: int,
        cluster_b: str,
        node_b: int,
        *,
        same_process: bool = False,
    ) -> LinkClass:
        """Return the :class:`LinkClass` between two process locations."""
        if same_process:
            return LinkClass.SELF
        if cluster_a != cluster_b:
            return LinkClass.INTER_CLUSTER
        if node_a != node_b:
            return LinkClass.INTRA_CLUSTER
        return LinkClass.INTRA_NODE

    def link_between(
        self, cluster_a: str, node_a: int, cluster_b: str, node_b: int
    ) -> tuple[LinkClass, LinkSpec]:
        """Return the link class and characteristics between two locations."""
        cls = self.classify(cluster_a, node_a, cluster_b, node_b)
        return cls, self.link_for(cls, cluster_a, cluster_b)

    def link_for(self, cls: LinkClass, cluster_a: str, cluster_b: str) -> LinkSpec:
        """Return the :class:`LinkSpec` for a given class and cluster pair."""
        if cls in (LinkClass.SELF, LinkClass.INTRA_NODE):
            return self.intra_node
        if cls is LinkClass.INTRA_CLUSTER:
            return self.intra_cluster_overrides.get(cluster_a, self.intra_cluster)
        link = self.inter_cluster.get(_pair_key(cluster_a, cluster_b))
        if link is None:
            link = self.inter_cluster_default
        if link is None:
            raise TopologyError(
                f"no inter-cluster link defined between {cluster_a!r} and {cluster_b!r}"
            )
        return link

    def transfer_time(
        self, nbytes: int | float, cluster_a: str, node_a: int, cluster_b: str, node_b: int
    ) -> float:
        """Time in seconds to move ``nbytes`` between the two locations.

        A message a process sends to itself costs nothing.
        """
        cls = self.classify(cluster_a, node_a, cluster_b, node_b)
        if cls is LinkClass.SELF and cluster_a == cluster_b and node_a == node_b:
            # Same node: still classified INTRA_NODE unless flagged; cost below.
            pass
        link = self.link_for(cls, cluster_a, cluster_b)
        return link.transfer_time(nbytes)

    # --------------------------------------------------------------- report
    def latency_matrix_ms(self, cluster_names: list[str]) -> dict[tuple[str, str], float]:
        """Return the pairwise latency matrix in milliseconds (Table 3(a) style)."""
        out: dict[tuple[str, str], float] = {}
        for i, a in enumerate(cluster_names):
            for b in cluster_names[i:]:
                if a == b:
                    link = self.intra_cluster_overrides.get(a, self.intra_cluster)
                else:
                    link = self.link_for(LinkClass.INTER_CLUSTER, a, b)
                out[(a, b)] = link.latency_s * 1e3
        return out

    def throughput_matrix_mbits(self, cluster_names: list[str]) -> dict[tuple[str, str], float]:
        """Return the pairwise throughput matrix in Mb/s (Table 3(a) style)."""
        out: dict[tuple[str, str], float] = {}
        for i, a in enumerate(cluster_names):
            for b in cluster_names[i:]:
                if a == b:
                    link = self.intra_cluster_overrides.get(a, self.intra_cluster)
                else:
                    link = self.link_for(LinkClass.INTER_CLUSTER, a, b)
                out[(a, b)] = link.bandwidth_bytes_per_s * 8.0 / 1e6
        return out
