"""Givens-rotation QR.

Paper §II-C recalls that the late-1970s parallel QR algorithms were built on
Givens rotations (they zero one entry at a time and therefore expose very
fine-grained parallelism); those algorithms are scalar flat-tree instances of
the general framework of Demmel et al.  We keep a Givens QR around as a
historical baseline and as an independent oracle in the test suite (its R
factor must match the Householder one up to signs).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

__all__ = ["givens_rotation", "givens_qr"]


def givens_rotation(a: float, b: float) -> tuple[float, float]:
    """Return ``(c, s)`` such that ``[[c, s], [-s, c]] @ [a, b] = [r, 0]``.

    Uses the hypot-based formulation that is robust to overflow/underflow.
    """
    if b == 0.0:
        return 1.0, 0.0
    if a == 0.0:
        return 0.0, np.copysign(1.0, b)
    r = np.hypot(a, b)
    return a / r, b / r


def givens_qr(a: np.ndarray, *, want_q: bool = True) -> tuple[np.ndarray | None, np.ndarray]:
    """QR factorization by Givens rotations.

    Entries below the diagonal are annihilated column by column, bottom-up.
    Returns ``(Q, R)`` with thin ``Q`` (``m x min(m, n)``) when ``want_q`` is
    True, else ``(None, R)``.

    This is an O(m n^2) algorithm with a much larger constant than blocked
    Householder QR; it exists for validation and pedagogy, not performance.
    """
    r = np.array(a, dtype=np.float64, copy=True)
    if r.ndim != 2:
        raise ShapeError(f"givens_qr expects a 2-D matrix, got ndim={r.ndim}")
    m, n = r.shape
    k = min(m, n)
    q = np.eye(m) if want_q else None
    for j in range(k):
        for i in range(m - 1, j, -1):
            if r[i, j] == 0.0:
                continue
            c, s = givens_rotation(r[i - 1, j], r[i, j])
            # Apply the rotation to rows i-1 and i of R (columns j: only).
            gi = np.array([[c, s], [-s, c]])
            r[[i - 1, i], j:] = gi @ r[[i - 1, i], j:]
            r[i, j] = 0.0
            if want_q:
                q[:, [i - 1, i]] = q[:, [i - 1, i]] @ gi.T
    r_thin = np.triu(r[:k, :])
    if want_q:
        return q[:, :k], r_thin
    return None, r_thin
