"""Dense numerical kernels (LAPACK-style building blocks).

These are the *domanial* kernels of the paper: every domain of TSQR, every
panel of CAQR and every column step of the ScaLAPACK baseline ultimately
reduces to the routines defined here.  They operate on real numpy arrays and
are written in vectorised numpy/scipy style (no Python-level loops over
matrix entries beyond the unavoidable loop over columns/panels).

Module map
----------
``householder``
    Householder reflectors, unblocked ``geqr2``, blocked ``geqrf`` with the
    compact WY representation (``larft``/``larfb``), explicit-Q formation
    (``orgqr``) and application (``ormqr``).
``tskernels``
    The TSQR combine operation: QR of two stacked upper-triangular factors,
    plus helpers to stack/apply the small Q factors produced along the tree.
``tiled``
    Tile kernels of CAQR (GEQRT / UNMQR / TSQRT / TSMQR).
``givens``
    Givens-rotation QR, the historical fine-grained baseline (paper §II-C).
``gram_schmidt``
    Classical / modified / re-orthogonalised Gram-Schmidt baselines.
``cholqr``
    CholeskyQR and CholeskyQR2, the cheap-but-unstable orthogonalization
    schemes TSQR is designed to replace (paper §II-E).
"""

from repro.kernels.householder import (
    HouseholderQR,
    apply_q,
    form_q,
    geqr2,
    geqrf,
    householder_reflector,
    larfb,
    larft,
)
from repro.kernels.tskernels import (
    StackedQR,
    qr_of_stacked,
    qr_of_stacked_triangles,
    stack_pair,
)
from repro.kernels.tiled import TileQR, TileTSQR, geqrt, tsmqr, tsqrt, unmqr
from repro.kernels.givens import givens_qr, givens_rotation
from repro.kernels.gram_schmidt import cgs, cgs2, mgs
from repro.kernels.cholqr import cholqr, cholqr2

__all__ = [
    "HouseholderQR",
    "apply_q",
    "form_q",
    "geqr2",
    "geqrf",
    "householder_reflector",
    "larfb",
    "larft",
    "StackedQR",
    "qr_of_stacked",
    "qr_of_stacked_triangles",
    "stack_pair",
    "TileQR",
    "TileTSQR",
    "geqrt",
    "tsmqr",
    "tsqrt",
    "unmqr",
    "givens_qr",
    "givens_rotation",
    "cgs",
    "cgs2",
    "mgs",
    "cholqr",
    "cholqr2",
]
