"""Cholesky-QR orthogonalization (CholQR and CholQR2).

Cholesky-QR computes ``R`` as the Cholesky factor of the Gram matrix
``A^T A`` and then ``Q = A R^{-1}``.  Like TSQR it needs a *single* reduction
(of an ``n x n`` Gram matrix), so it is the other popular
communication-minimal orthogonalization scheme — but it squares the condition
number and breaks down for ``kappa(A) > 1/sqrt(eps)``.  Running it twice
(CholeskyQR2) repairs the orthogonality as long as the first pass does not
break down.

These routines serve as comparison points for the stability discussion of
paper §II-E and for the application-level examples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FactorizationError, ShapeError

__all__ = ["cholqr", "cholqr2"]


def cholqr(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cholesky-QR factorization of a tall matrix.

    Raises :class:`FactorizationError` when the Gram matrix is numerically
    indefinite (the well-known breakdown for ill-conditioned inputs).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"cholqr expects a 2-D matrix, got ndim={a.ndim}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"cholqr requires m >= n, got {m} < {n}")
    gram = a.T @ a
    try:
        # numpy returns the lower factor; R = L^T.
        l = np.linalg.cholesky(gram)
    except np.linalg.LinAlgError as exc:
        raise FactorizationError(
            "Cholesky-QR breakdown: Gram matrix is not positive definite "
            "(condition number likely exceeds 1/sqrt(eps))"
        ) from exc
    r = l.T
    # Q = A R^{-1} computed by triangular solve (never form the inverse).
    q = np.linalg.solve(r.T, a.T).T
    return q, r


def cholqr2(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CholeskyQR2: two passes of Cholesky-QR.

    The second pass orthogonalises the output of the first, giving
    machine-precision orthogonality whenever the first pass succeeds.
    """
    q1, r1 = cholqr(a)
    q2, r2 = cholqr(q1)
    return q2, r2 @ r1
