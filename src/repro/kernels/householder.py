"""Householder QR kernels (LAPACK ``GEQR2``/``GEQRF`` analogues).

The routines follow the LAPACK conventions closely:

* a reflector is ``H = I - tau * v v^T`` with ``v[0] = 1``;
* ``geqr2`` is the unblocked factorization (one reflector per column);
* ``geqrf`` accumulates ``nb`` reflectors per panel and applies them to the
  trailing matrix through the compact WY representation
  ``H_1 H_2 ... H_nb = I - V T V^T`` (``larft`` builds ``T``, ``larfb``
  applies the block reflector), exactly the blocking described in paper
  §II-B;
* ``form_q`` (ORGQR) and ``apply_q`` (ORMQR) expose the orthogonal factor.

Everything is vectorised numpy: the only Python-level loops are over columns
(``geqr2``) and panels (``geqrf``), as in any textbook blocked QR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError

__all__ = [
    "HouseholderQR",
    "householder_reflector",
    "geqr2",
    "geqrf",
    "larft",
    "larfb",
    "form_q",
    "apply_q",
]


@dataclass(frozen=True)
class HouseholderQR:
    """Result of a Householder QR factorization in factored form.

    Attributes
    ----------
    v:
        ``m x k`` matrix of reflectors stored as unit lower-trapezoidal
        columns (``v[j, j] == 1`` implicitly; the stored diagonal is 1 and the
        strict upper triangle is zero).
    tau:
        Length-``k`` vector of reflector scaling factors.
    r:
        ``k x n`` upper-trapezoidal factor such that ``A = Q R`` with
        ``Q = H_1 ... H_k`` restricted to its first ``k`` columns.
    """

    v: np.ndarray
    tau: np.ndarray
    r: np.ndarray

    @property
    def m(self) -> int:
        """Number of rows of the factored matrix."""
        return self.v.shape[0]

    @property
    def k(self) -> int:
        """Number of reflectors (min(m, n))."""
        return self.v.shape[1]

    @property
    def n(self) -> int:
        """Number of columns of the factored matrix."""
        return self.r.shape[1]

    def q(self) -> np.ndarray:
        """Return the explicit ``m x k`` thin orthogonal factor."""
        return form_q(self.v, self.tau)

    def qt_times(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q^T @ c`` without forming Q."""
        return apply_q(self.v, self.tau, c, transpose=True)

    def q_times(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q @ c`` without forming Q."""
        return apply_q(self.v, self.tau, c, transpose=False)


def householder_reflector(x: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Compute a Householder reflector annihilating ``x[1:]``.

    Returns ``(v, tau, beta)`` with ``v[0] = 1`` such that
    ``(I - tau v v^T) x = [beta, 0, ..., 0]^T``.  The sign of ``beta`` is
    chosen opposite to ``x[0]`` (the LAPACK convention) to avoid cancellation.

    A zero (or length-1) input yields ``tau = 0`` (identity reflector).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ShapeError(f"reflector input must be a vector, got shape {x.shape}")
    n = x.size
    v = np.zeros(n)
    if n == 0:
        return v, 0.0, 0.0
    v[0] = 1.0
    alpha = float(x[0])
    if n == 1:
        return v, 0.0, alpha
    sigma = float(np.dot(x[1:], x[1:]))
    if sigma == 0.0:
        return v, 0.0, alpha
    norm_x = np.sqrt(alpha * alpha + sigma)
    beta = -np.copysign(norm_x, alpha) if alpha != 0.0 else -norm_x
    tau = (beta - alpha) / beta
    v[1:] = x[1:] / (alpha - beta)
    return v, float(tau), float(beta)


def geqr2(a: np.ndarray) -> HouseholderQR:
    """Unblocked Householder QR of an ``m x n`` matrix (LAPACK ``GEQR2``).

    One reflector is generated per column and immediately applied to the
    trailing columns.  This is the kernel whose *distributed* version
    (``PDGEQR2``) costs one allreduce per column in ScaLAPACK — the
    communication bottleneck the paper identifies.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    if a.ndim != 2:
        raise ShapeError(f"geqr2 expects a 2-D matrix, got ndim={a.ndim}")
    m, n = a.shape
    k = min(m, n)
    v = np.zeros((m, k))
    tau = np.zeros(k)
    for j in range(k):
        vj, tj, beta = householder_reflector(a[j:, j])
        tau[j] = tj
        v[j:, j] = vj
        a[j, j] = beta
        a[j + 1 :, j] = 0.0
        if tj != 0.0 and j + 1 < n:
            # Apply H_j = I - tau v v^T to the trailing columns.
            w = a[j:, j + 1 :].T @ vj
            a[j:, j + 1 :] -= tj * np.outer(vj, w)
    r = np.triu(a[:k, :])
    return HouseholderQR(v=v, tau=tau, r=r)


def larft(v: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Form the upper-triangular ``T`` of the compact WY representation.

    ``H_1 ... H_k = I - V T V^T`` where ``V`` holds the unit
    lower-trapezoidal reflectors column-wise (LAPACK ``LARFT`` with
    ``DIRECT='F'``, ``STOREV='C'``).
    """
    v = np.asarray(v, dtype=np.float64)
    tau = np.asarray(tau, dtype=np.float64)
    if v.ndim != 2 or tau.ndim != 1 or v.shape[1] != tau.size:
        raise ShapeError(f"inconsistent V {v.shape} / tau {tau.shape}")
    k = tau.size
    t = np.zeros((k, k))
    for j in range(k):
        if tau[j] == 0.0:
            continue
        t[j, j] = tau[j]
        if j > 0:
            # t[:j, j] = -tau_j * T[:j,:j] @ (V[:, :j]^T v_j)
            w = v[:, :j].T @ v[:, j]
            t[:j, j] = -tau[j] * (t[:j, :j] @ w)
    return t


def larfb(
    v: np.ndarray,
    t: np.ndarray,
    c: np.ndarray,
    *,
    transpose: bool = True,
) -> np.ndarray:
    """Apply the block reflector ``Q = I - V T V^T`` (or its transpose) to ``C``.

    ``C`` is updated from the left: returns ``Q^T C`` when ``transpose`` is
    True (the factorization-update direction) or ``Q C`` otherwise.  The
    operation is three GEMMs, which is precisely why blocking pays off on
    cache-based and BLAS3-capable hardware (paper §II-B).
    """
    v = np.asarray(v, dtype=np.float64)
    t = np.asarray(t, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if c.shape[0] != v.shape[0]:
        raise ShapeError(f"C rows {c.shape[0]} do not match V rows {v.shape[0]}")
    op_t = t.T if transpose else t
    w = v.T @ c  # k x ncols
    return c - v @ (op_t @ w)


def geqrf(a: np.ndarray, block_size: int = 32) -> HouseholderQR:
    """Blocked Householder QR (LAPACK ``GEQRF``).

    Panels of ``block_size`` columns are factored with :func:`geqr2`; the
    accumulated block reflector is applied to the trailing matrix with one
    :func:`larft` + :func:`larfb` pair per panel.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    if a.ndim != 2:
        raise ShapeError(f"geqrf expects a 2-D matrix, got ndim={a.ndim}")
    if block_size <= 0:
        raise ShapeError(f"block size must be positive, got {block_size}")
    m, n = a.shape
    k = min(m, n)
    v = np.zeros((m, k))
    tau = np.zeros(k)
    for j0 in range(0, k, block_size):
        j1 = min(j0 + block_size, k)
        panel = geqr2(a[j0:, j0:j1])
        nb = j1 - j0
        v[j0:, j0:j1] = panel.v[:, :nb]
        tau[j0:j1] = panel.tau[:nb]
        a[j0 : j0 + nb, j0:j1] = panel.r[:nb, :]
        a[j0 + nb :, j0:j1] = 0.0
        if j1 < n:
            t = larft(panel.v, panel.tau)
            a[j0:, j1:] = larfb(panel.v, t, a[j0:, j1:], transpose=True)
    r = np.triu(a[:k, :])
    return HouseholderQR(v=v, tau=tau, r=r)


def apply_q(
    v: np.ndarray,
    tau: np.ndarray,
    c: np.ndarray,
    *,
    transpose: bool = False,
) -> np.ndarray:
    """Apply ``Q`` (or ``Q^T``) defined by reflectors ``(V, tau)`` to ``C``.

    Equivalent to LAPACK ``ORMQR`` with ``SIDE='L'``.  ``C`` may be a vector
    or a matrix with ``m`` rows.
    """
    v = np.asarray(v, dtype=np.float64)
    tau = np.asarray(tau, dtype=np.float64)
    c = np.array(c, dtype=np.float64, copy=True)
    squeeze = False
    if c.ndim == 1:
        c = c[:, None]
        squeeze = True
    if c.shape[0] != v.shape[0]:
        raise ShapeError(f"C rows {c.shape[0]} do not match V rows {v.shape[0]}")
    k = tau.size
    # Q = H_1 H_2 ... H_k.  Q^T C applies H_1 first; Q C applies H_k first.
    order = range(k) if transpose else range(k - 1, -1, -1)
    for j in order:
        if tau[j] == 0.0:
            continue
        vj = v[:, j]
        w = c.T @ vj
        c -= tau[j] * np.outer(vj, w)
    return c[:, 0] if squeeze else c


def form_q(v: np.ndarray, tau: np.ndarray, n_columns: int | None = None) -> np.ndarray:
    """Form the explicit thin orthogonal factor (LAPACK ``ORGQR``).

    Returns the first ``n_columns`` columns of ``Q = H_1 ... H_k`` (default:
    ``k`` columns, the thin Q).
    """
    v = np.asarray(v, dtype=np.float64)
    tau = np.asarray(tau, dtype=np.float64)
    m, k = v.shape
    if n_columns is None:
        n_columns = k
    if n_columns > m:
        raise ShapeError(f"cannot form {n_columns} columns of an {m}-row Q")
    eye = np.zeros((m, n_columns))
    np.fill_diagonal(eye, 1.0)
    return apply_q(v, tau, eye, transpose=False)
