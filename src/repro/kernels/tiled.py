"""Tile kernels for CAQR (Communication-Avoiding QR of general matrices).

CAQR (paper §II-C and §VI) factors a general ``M x N`` matrix tiled into
``mt x nt`` blocks.  Each panel is factored with TSQR over the tiles of the
panel column, and the trailing tiles are updated with the corresponding
orthogonal transformations.  The four kernels below are the classical tiled
QR kernel set (PLASMA naming):

``geqrt``  QR of a diagonal tile, producing ``(V, T, R)``.
``unmqr``  Apply a ``geqrt`` transformation to a trailing tile on the same row.
``tsqrt``  QR of a triangle stacked on top of a square tile
           (the "triangle on top of square" combine of the panel TSQR).
``tsmqr``  Apply a ``tsqrt`` transformation to the corresponding pair of
           trailing tiles.

These kernels use the Householder/compact-WY routines of
:mod:`repro.kernels.householder` internally; they are exact (no structure is
dropped), merely organised tile-by-tile so that
:mod:`repro.tsqr.caqr` can schedule them along any reduction tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.kernels.householder import geqrf, larfb, larft

__all__ = ["TileQR", "TileTSQR", "geqrt", "unmqr", "tsqrt", "tsmqr"]


@dataclass(frozen=True)
class TileQR:
    """Factored form of a diagonal tile: ``A = Q R`` with ``Q = I - V T V^T``."""

    v: np.ndarray
    t: np.ndarray
    r: np.ndarray


@dataclass(frozen=True)
class TileTSQR:
    """Factored form of a ``[R_top; A_bottom]`` stack.

    ``v``/``t`` define the block reflector acting on the stacked row space
    (``n + m_bottom`` rows); ``r`` is the updated triangle that replaces
    ``R_top``.
    """

    v: np.ndarray
    t: np.ndarray
    r: np.ndarray
    rows_top: int


def geqrt(tile: np.ndarray, block_size: int = 32) -> TileQR:
    """Factor a diagonal tile, returning reflectors, T factor and R."""
    tile = np.asarray(tile, dtype=np.float64)
    if tile.ndim != 2:
        raise ShapeError(f"geqrt expects a 2-D tile, got ndim={tile.ndim}")
    fact = geqrf(tile, block_size=block_size)
    t = larft(fact.v, fact.tau)
    return TileQR(v=fact.v, t=t, r=fact.r)


def unmqr(tile_qr: TileQR, c: np.ndarray, *, transpose: bool = True) -> np.ndarray:
    """Apply ``Q^T`` (default) or ``Q`` of a :func:`geqrt` factorization to ``c``.

    ``transpose=True`` is the factorization/update direction; ``False`` is
    used when re-applying the stored transformations to build or apply Q.
    """
    c = np.asarray(c, dtype=np.float64)
    if c.shape[0] != tile_qr.v.shape[0]:
        raise ShapeError(
            f"tile has {c.shape[0]} rows but reflectors have {tile_qr.v.shape[0]}"
        )
    return larfb(tile_qr.v, tile_qr.t, c, transpose=transpose)


def tsqrt(r_top: np.ndarray, a_bottom: np.ndarray, block_size: int = 32) -> TileTSQR:
    """Factor the stack of a triangle ``r_top`` on top of a tile ``a_bottom``.

    Returns the block reflector of the stacked factorization and the updated
    triangle.  This is the panel-TSQR combine used when eliminating tile
    ``a_bottom`` against the current panel triangle.
    """
    r_top = np.atleast_2d(np.asarray(r_top, dtype=np.float64))
    a_bottom = np.atleast_2d(np.asarray(a_bottom, dtype=np.float64))
    if r_top.shape[1] != a_bottom.shape[1]:
        raise ShapeError(
            f"column mismatch: triangle has {r_top.shape[1]}, tile has {a_bottom.shape[1]}"
        )
    stacked = np.vstack([r_top, a_bottom])
    fact = geqrf(stacked, block_size=block_size)
    t = larft(fact.v, fact.tau)
    return TileTSQR(v=fact.v, t=t, r=fact.r, rows_top=r_top.shape[0])


def tsmqr(
    ts: TileTSQR,
    c_top: np.ndarray,
    c_bottom: np.ndarray,
    *,
    transpose: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a :func:`tsqrt` transformation to the trailing tile pair.

    ``c_top`` sits on the panel's diagonal row block, ``c_bottom`` on the row
    block of the eliminated tile; both are updated by ``Q^T`` (default) or
    ``Q`` of the stacked factorization and returned as ``(new_top, new_bottom)``.
    """
    c_top = np.atleast_2d(np.asarray(c_top, dtype=np.float64))
    c_bottom = np.atleast_2d(np.asarray(c_bottom, dtype=np.float64))
    if c_top.shape[1] != c_bottom.shape[1]:
        raise ShapeError("trailing tiles must have the same number of columns")
    if c_top.shape[0] + c_bottom.shape[0] != ts.v.shape[0]:
        raise ShapeError(
            f"stacked trailing rows {c_top.shape[0]}+{c_bottom.shape[0]} do not match "
            f"reflector rows {ts.v.shape[0]}"
        )
    stacked = np.vstack([c_top, c_bottom])
    updated = larfb(ts.v, ts.t, stacked, transpose=transpose)
    return updated[: ts.rows_top, :], updated[ts.rows_top :, :]
