"""Tile kernels for CAQR (Communication-Avoiding QR of general matrices).

CAQR (paper §II-C and §VI) factors a general ``M x N`` matrix tiled into
``mt x nt`` blocks.  Each panel is factored with TSQR over the tiles of the
panel column, and the trailing tiles are updated with the corresponding
orthogonal transformations.  The four kernels below are the classical tiled
QR kernel set (PLASMA naming):

``geqrt``  QR of a diagonal tile, producing ``(V, T, R)``.
``unmqr``  Apply a ``geqrt`` transformation to a trailing tile on the same row.
``tsqrt``  QR of a triangle stacked on top of a square tile
           (the "triangle on top of square" combine of the panel TSQR).
``tsmqr``  Apply a ``tsqrt`` transformation to the corresponding pair of
           trailing tiles.

These kernels use the Householder/compact-WY routines of
:mod:`repro.kernels.householder` internally; they are exact (no structure is
dropped), merely organised tile-by-tile so that
:mod:`repro.tsqr.caqr` and :mod:`repro.programs.caqr` can schedule them
along any reduction tree.

Every kernel also accepts :class:`~repro.virtual.matrix.VirtualMatrix`
payloads: shape checks still apply, the arithmetic is skipped, and outputs
are virtual matrices of the exact shapes the real kernel would produce.
The corresponding structured flop counts live in :mod:`repro.virtual.flops`
(:func:`~repro.virtual.flops.geqrt_flops` and friends) so callers — the
distributed CAQR program and the §IV cost model — charge identical costs on
the virtual and the real path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.kernels.householder import geqrf, larfb, larft
from repro.virtual.matrix import MatrixLike, VirtualMatrix, is_virtual, shape_of

__all__ = ["TileQR", "TileTSQR", "geqrt", "unmqr", "tsqrt", "tsmqr"]


@dataclass(frozen=True)
class TileQR:
    """Factored form of a diagonal tile: ``A = Q R`` with ``Q = I - V T V^T``.

    All three factors are :class:`VirtualMatrix` stand-ins when the kernel
    ran on a virtual payload.
    """

    v: MatrixLike
    t: MatrixLike
    r: MatrixLike


@dataclass(frozen=True)
class TileTSQR:
    """Factored form of a ``[R_top; A_bottom]`` stack.

    ``v``/``t`` define the block reflector acting on the stacked row space
    (``n + m_bottom`` rows); ``r`` is the updated triangle that replaces
    ``R_top``.  Virtual payloads yield virtual factors.
    """

    v: MatrixLike
    t: MatrixLike
    r: MatrixLike
    rows_top: int


def geqrt(tile: MatrixLike, block_size: int = 32) -> TileQR:
    """Factor a diagonal tile, returning reflectors, T factor and R."""
    if is_virtual(tile):
        m, n = tile.shape
        k = min(m, n)
        return TileQR(
            v=VirtualMatrix(m, k),
            t=VirtualMatrix(k, k, structure="upper"),
            r=VirtualMatrix(k, n, structure="upper"),
        )
    tile = np.asarray(tile, dtype=np.float64)
    if tile.ndim != 2:
        raise ShapeError(f"geqrt expects a 2-D tile, got ndim={tile.ndim}")
    fact = geqrf(tile, block_size=block_size)
    t = larft(fact.v, fact.tau)
    return TileQR(v=fact.v, t=t, r=fact.r)


def unmqr(tile_qr: TileQR, c: MatrixLike, *, transpose: bool = True) -> MatrixLike:
    """Apply ``Q^T`` (default) or ``Q`` of a :func:`geqrt` factorization to ``c``.

    ``transpose=True`` is the factorization/update direction; ``False`` is
    used when re-applying the stored transformations to build or apply Q.
    """
    if is_virtual(tile_qr.v) or is_virtual(c):
        m, n_cols = shape_of(c)
        if m != shape_of(tile_qr.v)[0]:
            raise ShapeError(
                f"tile has {m} rows but reflectors have {shape_of(tile_qr.v)[0]}"
            )
        return VirtualMatrix(m, n_cols)
    c = np.asarray(c, dtype=np.float64)
    if c.shape[0] != tile_qr.v.shape[0]:
        raise ShapeError(
            f"tile has {c.shape[0]} rows but reflectors have {tile_qr.v.shape[0]}"
        )
    return larfb(tile_qr.v, tile_qr.t, c, transpose=transpose)


def tsqrt(r_top: MatrixLike, a_bottom: MatrixLike, block_size: int = 32) -> TileTSQR:
    """Factor the stack of a triangle ``r_top`` on top of a tile ``a_bottom``.

    Returns the block reflector of the stacked factorization and the updated
    triangle.  This is the panel-TSQR combine used when eliminating tile
    ``a_bottom`` against the current panel triangle.
    """
    if is_virtual(r_top) or is_virtual(a_bottom):
        rows_top, n = shape_of(r_top)
        m_bottom, n_bottom = shape_of(a_bottom)
        if n != n_bottom:
            raise ShapeError(
                f"column mismatch: triangle has {n}, tile has {n_bottom}"
            )
        total = rows_top + m_bottom
        k = min(total, n)
        return TileTSQR(
            v=VirtualMatrix(total, k),
            t=VirtualMatrix(k, k, structure="upper"),
            r=VirtualMatrix(k, n, structure="upper"),
            rows_top=rows_top,
        )
    r_top = np.atleast_2d(np.asarray(r_top, dtype=np.float64))
    a_bottom = np.atleast_2d(np.asarray(a_bottom, dtype=np.float64))
    if r_top.shape[1] != a_bottom.shape[1]:
        raise ShapeError(
            f"column mismatch: triangle has {r_top.shape[1]}, tile has {a_bottom.shape[1]}"
        )
    stacked = np.vstack([r_top, a_bottom])
    fact = geqrf(stacked, block_size=block_size)
    t = larft(fact.v, fact.tau)
    return TileTSQR(v=fact.v, t=t, r=fact.r, rows_top=r_top.shape[0])


def tsmqr(
    ts: TileTSQR,
    c_top: MatrixLike,
    c_bottom: MatrixLike,
    *,
    transpose: bool = True,
) -> tuple[MatrixLike, MatrixLike]:
    """Apply a :func:`tsqrt` transformation to the trailing tile pair.

    ``c_top`` sits on the panel's diagonal row block, ``c_bottom`` on the row
    block of the eliminated tile; both are updated by ``Q^T`` (default) or
    ``Q`` of the stacked factorization and returned as ``(new_top, new_bottom)``.
    """
    if is_virtual(ts.v) or is_virtual(c_top) or is_virtual(c_bottom):
        rows_top, cols_top = shape_of(c_top)
        rows_bottom, cols_bottom = shape_of(c_bottom)
        if cols_top != cols_bottom:
            raise ShapeError("trailing tiles must have the same number of columns")
        if rows_top + rows_bottom != shape_of(ts.v)[0]:
            raise ShapeError(
                f"stacked trailing rows {rows_top}+{rows_bottom} do not match "
                f"reflector rows {shape_of(ts.v)[0]}"
            )
        return VirtualMatrix(rows_top, cols_top), VirtualMatrix(rows_bottom, cols_bottom)
    c_top = np.atleast_2d(np.asarray(c_top, dtype=np.float64))
    c_bottom = np.atleast_2d(np.asarray(c_bottom, dtype=np.float64))
    if c_top.shape[1] != c_bottom.shape[1]:
        raise ShapeError("trailing tiles must have the same number of columns")
    if c_top.shape[0] + c_bottom.shape[0] != ts.v.shape[0]:
        raise ShapeError(
            f"stacked trailing rows {c_top.shape[0]}+{c_bottom.shape[0]} do not match "
            f"reflector rows {ts.v.shape[0]}"
        )
    stacked = np.vstack([c_top, c_bottom])
    updated = larfb(ts.v, ts.t, stacked, transpose=transpose)
    return updated[: ts.rows_top, :], updated[ts.rows_top :, :]
