"""Tile kernels for the tiled right-looking LU factorization (no pivoting).

The classical tile LU kernel set with pivoting disabled across (and inside)
tiles — the variant the tile-algorithm literature uses on diagonally
dominant matrices, where partial pivoting is provably unnecessary:

``getrf``     Unpivoted LU of the diagonal tile, packed LAPACK-style:
              ``U`` on and above the diagonal, unit-lower ``L`` (implicit
              unit diagonal) strictly below.
``trsm_row``  Row update ``U_kj = L_kk^{-1} A_kj`` right of the diagonal.
``trsm_col``  Column update ``L_ik = A_ik U_kk^{-1}`` below the diagonal.
``gemm``      Trailing update ``A_ij - L_ik U_kj`` (``i, j > k``).

As with the QR and Cholesky kernel sets, the dependency edges pin each
tile's operation sequence, so a DAG execution is bit-identical to the
sequential loop nest running the same kernels (the blocked reference of the
tests).  Every kernel accepts :class:`~repro.virtual.matrix.VirtualMatrix`
payloads; the structured counts live in :mod:`repro.virtual.flops`
(:func:`~repro.virtual.flops.getrf_flops` and friends).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FactorizationError, ShapeError
from repro.virtual.matrix import MatrixLike, VirtualMatrix, is_virtual, shape_of

__all__ = ["getrf", "trsm_row", "trsm_col", "gemm"]


def getrf(a_kk: MatrixLike) -> MatrixLike:
    """Unpivoted right-looking LU of a tile, returning the packed ``L\\U``."""
    m, n = shape_of(a_kk)
    if is_virtual(a_kk):
        return VirtualMatrix(m, n)
    lu = np.array(a_kk, dtype=np.float64, copy=True)
    for j in range(min(m, n)):
        piv = lu[j, j]
        if piv == 0.0:
            raise FactorizationError(
                f"zero pivot at tile position {j}; unpivoted LU needs a "
                "matrix whose leading minors are nonsingular (e.g. "
                "diagonally dominant)"
            )
        lu[j + 1 :, j] /= piv
        lu[j + 1 :, j + 1 :] -= np.outer(lu[j + 1 :, j], lu[j, j + 1 :])
    return lu


def _unit_lower(lu_kk: np.ndarray, k: int) -> np.ndarray:
    """The ``k x k`` unit-lower ``L`` factor packed in a getrf output."""
    return np.tril(lu_kk[:k, :k], -1) + np.eye(k)


def trsm_row(lu_kk: MatrixLike, a_kj: MatrixLike) -> MatrixLike:
    """Row update right of the diagonal: ``U_kj = L_kk^{-1} A_kj``."""
    h, w = shape_of(lu_kk)
    m, n_cols = shape_of(a_kj)
    if m != h:
        raise ShapeError(f"trsm_row operand has {m} rows but the tile has {h}")
    if h > w:
        # A tall diagonal tile only happens in the last tile *column*, where
        # there is nothing to the right of it — no row update reads it.
        raise ShapeError(f"trsm_row needs h <= w on the diagonal tile, got {h} x {w}")
    if is_virtual(lu_kk) or is_virtual(a_kj):
        return VirtualMatrix(m, n_cols)
    lu_kk = np.asarray(lu_kk, dtype=np.float64)
    return np.linalg.solve(_unit_lower(lu_kk, h), np.asarray(a_kj, dtype=np.float64))


def trsm_col(lu_kk: MatrixLike, a_ik: MatrixLike) -> MatrixLike:
    """Column update below the diagonal: ``L_ik = A_ik U_kk^{-1}``."""
    h, w = shape_of(lu_kk)
    m, n_cols = shape_of(a_ik)
    if n_cols != w:
        raise ShapeError(f"trsm_col operand has {n_cols} columns but the tile has {w}")
    if w > h:
        # A wide diagonal tile only happens in the last tile *row*, where
        # there is nothing below it — no column update reads it.
        raise ShapeError(f"trsm_col needs w <= h on the diagonal tile, got {h} x {w}")
    if is_virtual(lu_kk) or is_virtual(a_ik):
        return VirtualMatrix(m, n_cols)
    u_kk = np.triu(np.asarray(lu_kk, dtype=np.float64)[:w, :])
    # X U = A  <=>  U^T X^T = A^T.
    return np.linalg.solve(u_kk.T, np.asarray(a_ik, dtype=np.float64).T).T


def gemm(l_ik: MatrixLike, u_kj: MatrixLike, a_ij: MatrixLike) -> MatrixLike:
    """Trailing update: ``A_ij - L_ik U_kj`` (``i, j > k``)."""
    m, n = shape_of(a_ij)
    mi, ki = shape_of(l_ik)
    kj, nj = shape_of(u_kj)
    if mi != m or nj != n or ki != kj:
        raise ShapeError(
            f"gemm shapes do not chain: ({mi} x {ki}) @ ({kj} x {nj}) vs {m} x {n}"
        )
    if is_virtual(l_ik) or is_virtual(u_kj) or is_virtual(a_ij):
        return VirtualMatrix(m, n)
    return (
        np.asarray(a_ij, dtype=np.float64)
        - np.asarray(l_ik, dtype=np.float64) @ np.asarray(u_kj, dtype=np.float64)
    )
