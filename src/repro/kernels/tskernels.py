"""TSQR combine kernels: QR of stacked R factors.

The heart of TSQR (paper §II-C) is a *binary, associative* reduction
operation: given two upper-triangular factors ``R1`` and ``R2``, stack them
and take the R factor of the QR of ``[R1; R2]``.  The operation is also
commutative once the diagonals are normalised to be non-negative, which is
what makes it usable inside a general (and in our case topology-tuned)
reduction tree.

Besides the R factor, the combine produces a small ``(rows1+rows2) x n``
orthogonal factor; keeping those per-node Q factors is what allows the
implicit tree representation of the global Q
(:class:`repro.tsqr.qrepresentation.TSQRQFactor`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.kernels.householder import geqrf
from repro.util.validation import normalize_qr_signs

__all__ = [
    "StackedQR",
    "stack_pair",
    "qr_of_stacked",
    "qr_of_stacked_triangles",
]


@dataclass(frozen=True)
class StackedQR:
    """QR of a vertically stacked pair of blocks.

    Attributes
    ----------
    q:
        Explicit ``(rows1 + rows2) x k`` thin orthogonal factor of the stack.
    r:
        ``k x n`` upper-triangular factor with non-negative diagonal.
    rows_top:
        Number of rows contributed by the first operand; the first
        ``rows_top`` rows of ``q`` act on the top operand's row space.
    """

    q: np.ndarray
    r: np.ndarray
    rows_top: int

    @property
    def q_top(self) -> np.ndarray:
        """Rows of Q multiplying the top operand's Q in the tree recursion."""
        return self.q[: self.rows_top, :]

    @property
    def q_bottom(self) -> np.ndarray:
        """Rows of Q multiplying the bottom operand's Q in the tree recursion."""
        return self.q[self.rows_top :, :]


def stack_pair(r1: np.ndarray, r2: np.ndarray) -> np.ndarray:
    """Vertically stack two factors, validating matching column counts.

    Either operand may be empty (zero rows): TSQR domains holding no rows
    contribute an empty factor and the combine degrades gracefully.
    """
    r1 = np.atleast_2d(np.asarray(r1, dtype=np.float64))
    r2 = np.atleast_2d(np.asarray(r2, dtype=np.float64))
    if r1.size == 0 and r1.shape[1] == 0:
        r1 = r1.reshape(0, r2.shape[1])
    if r2.size == 0 and r2.shape[1] == 0:
        r2 = r2.reshape(0, r1.shape[1])
    if r1.shape[1] != r2.shape[1]:
        raise ShapeError(
            f"cannot stack factors with {r1.shape[1]} and {r2.shape[1]} columns"
        )
    return np.vstack([r1, r2])


def qr_of_stacked(r1: np.ndarray, r2: np.ndarray, *, want_q: bool = True) -> StackedQR:
    """QR of the stack ``[r1; r2]`` for general (not necessarily triangular) blocks.

    This is the reduction operator of TSQR.  The R factor is sign-normalised
    (non-negative diagonal) so the operation is commutative as well as
    associative, as required for an MPI-style user-defined reduction
    (paper §II-C).

    Parameters
    ----------
    want_q:
        When False, the orthogonal factor is not returned (``q`` is an empty
        array), halving the work — this matches the paper's focus on
        computing only R.
    """
    stacked = stack_pair(r1, r2)
    rows_top = np.atleast_2d(np.asarray(r1)).shape[0]
    m, n = stacked.shape
    if m == 0:
        return StackedQR(q=np.zeros((0, 0)), r=np.zeros((0, n)), rows_top=0)
    k = min(m, n)
    fact = geqrf(stacked, block_size=max(8, min(64, n)))
    r = fact.r
    if want_q:
        q = fact.q()
        q, r = normalize_qr_signs(q, r)
        return StackedQR(q=q, r=r, rows_top=rows_top)
    # Normalise signs of R alone (flip rows with negative diagonal).
    k = min(r.shape)
    signs = np.sign(np.diagonal(r)[:k])
    signs = np.where(signs == 0, 1.0, signs)
    r = r.copy()
    r[:k, :] *= signs[:, None]
    return StackedQR(q=np.zeros((m, 0)), r=r, rows_top=rows_top)


def qr_of_stacked_triangles(r1: np.ndarray, r2: np.ndarray, *, want_q: bool = True) -> StackedQR:
    """QR of two stacked *upper-triangular* factors.

    Semantically identical to :func:`qr_of_stacked`; the distinct entry point
    exists because (i) it validates the triangular precondition that the TSQR
    tree maintains as an invariant, and (ii) the paper's cost model charges
    the structured count ``2/3 n^3`` to this operation, which the simulator's
    virtual path looks up by kernel name.
    """
    for name, r in (("r1", r1), ("r2", r2)):
        arr = np.atleast_2d(np.asarray(r))
        if arr.size and np.any(np.abs(np.tril(arr, -1)) > 0):
            raise ShapeError(f"{name} is not upper triangular")
    return qr_of_stacked(r1, r2, want_q=want_q)
