"""Tile kernels for the tiled (right-looking) Cholesky factorization.

The classical tile Cholesky kernel set (PLASMA naming), operating on the
lower-triangular convention ``A = L L^T``:

``potrf``  Cholesky of a diagonal tile: ``A_kk = L_kk L_kk^T``.
``trsm``   Panel-column solve ``L_ik = A_ik L_kk^{-T}`` below the diagonal.
``syrk``   Symmetric trailing update ``A_ii - L_ik L_ik^T`` of a diagonal tile.
``gemm``   General trailing update ``A_ij - L_ik L_jk^T`` (``i > j > k``).

The dependency edges of the task graph pin each tile's operation sequence,
so any topological execution of these kernels produces the *same floating-
point result* as the sequential loop nest — which is what the DAG tests
compare bit for bit (and against ``numpy.linalg.cholesky`` at machine
precision; summation order differs from LAPACK's full-matrix POTRF, so the
agreement there is close, not bitwise).

Every kernel also accepts :class:`~repro.virtual.matrix.VirtualMatrix`
payloads — shape checks still apply, the arithmetic is skipped — with the
structured flop counts in :mod:`repro.virtual.flops`
(:func:`~repro.virtual.flops.potrf_flops` and friends).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FactorizationError, ShapeError
from repro.virtual.matrix import MatrixLike, VirtualMatrix, is_virtual, shape_of

__all__ = ["potrf", "trsm", "syrk", "gemm"]


def _require_square(name: str, tile: MatrixLike) -> int:
    m, n = shape_of(tile)
    if m != n:
        raise ShapeError(f"{name} expects a square tile, got {m} x {n}")
    return n


def potrf(a_kk: MatrixLike) -> MatrixLike:
    """Cholesky-factor a diagonal tile, returning the full lower-triangular
    ``L_kk`` (zeros above the diagonal, like LAPACK's dense output)."""
    n = _require_square("potrf", a_kk)
    if is_virtual(a_kk):
        return VirtualMatrix(n, n)
    try:
        return np.linalg.cholesky(np.asarray(a_kk, dtype=np.float64))
    except np.linalg.LinAlgError as exc:
        raise FactorizationError(f"diagonal tile is not positive definite: {exc}") from exc


def trsm(l_kk: MatrixLike, a_ik: MatrixLike) -> MatrixLike:
    """Panel-column solve: ``L_ik = A_ik L_kk^{-T}`` for a subdiagonal tile."""
    w = _require_square("trsm", l_kk)
    h, w_a = shape_of(a_ik)
    if w_a != w:
        raise ShapeError(f"trsm operand has {w_a} columns but the triangle is {w} x {w}")
    if is_virtual(l_kk) or is_virtual(a_ik):
        return VirtualMatrix(h, w)
    l_kk = np.asarray(l_kk, dtype=np.float64)
    a_ik = np.asarray(a_ik, dtype=np.float64)
    # X L^T = A  <=>  L X^T = A^T; the solve keeps the triangle exact.
    return np.linalg.solve(l_kk, a_ik.T).T


def syrk(l_ik: MatrixLike, a_ii: MatrixLike) -> MatrixLike:
    """Symmetric trailing update of a diagonal tile: ``A_ii - L_ik L_ik^T``."""
    n = _require_square("syrk", a_ii)
    h, _k = shape_of(l_ik)
    if h != n:
        raise ShapeError(f"syrk panel has {h} rows but the tile is {n} x {n}")
    if is_virtual(l_ik) or is_virtual(a_ii):
        return VirtualMatrix(n, n)
    l_ik = np.asarray(l_ik, dtype=np.float64)
    return np.asarray(a_ii, dtype=np.float64) - l_ik @ l_ik.T


def gemm(l_ik: MatrixLike, l_jk: MatrixLike, a_ij: MatrixLike) -> MatrixLike:
    """General trailing update: ``A_ij - L_ik L_jk^T`` (``i > j > k``)."""
    m, n = shape_of(a_ij)
    mi, ki = shape_of(l_ik)
    mj, kj = shape_of(l_jk)
    if mi != m or mj != n or ki != kj:
        raise ShapeError(
            f"gemm shapes do not chain: ({mi} x {ki}) @ ({mj} x {kj})^T vs {m} x {n}"
        )
    if is_virtual(l_ik) or is_virtual(l_jk) or is_virtual(a_ij):
        return VirtualMatrix(m, n)
    return (
        np.asarray(a_ij, dtype=np.float64)
        - np.asarray(l_ik, dtype=np.float64) @ np.asarray(l_jk, dtype=np.float64).T
    )
