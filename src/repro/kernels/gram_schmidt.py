"""Gram-Schmidt orthogonalization baselines (CGS, MGS, CGS2).

Paper §II-E motivates TSQR by noting that block iterative eigensolvers
(BLOPEX, SLEPc, PRIMME) "rely on unstable orthogonalization schemes to avoid
too many communications".  Classical Gram-Schmidt is the canonical example:
it needs only one reduction per block of columns (cheap in messages) but its
loss of orthogonality grows like ``kappa(A)^2``.  TSQR offers the same
message count with unconditional stability.

These routines give the test-suite and the stability example a quantitative
way to demonstrate that trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FactorizationError, ShapeError

__all__ = ["cgs", "mgs", "cgs2"]


def _validate(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got ndim={a.ndim}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"Gram-Schmidt QR requires m >= n, got {m} < {n}")
    return a


def cgs(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Classical Gram-Schmidt QR.

    All projections onto previously computed vectors are computed from the
    *original* column (one matrix-vector product per column, a single
    reduction in a distributed setting), which is exactly what makes it cheap
    and unstable.
    """
    a = _validate(a)
    m, n = a.shape
    q = np.zeros((m, n))
    r = np.zeros((n, n))
    for j in range(n):
        v = a[:, j].copy()
        original_norm = np.linalg.norm(v)
        if j > 0:
            r[:j, j] = q[:, :j].T @ a[:, j]
            v -= q[:, :j] @ r[:j, j]
        nrm = np.linalg.norm(v)
        if nrm <= 100 * np.finfo(np.float64).eps * original_norm:
            raise FactorizationError(f"column {j} is numerically dependent; CGS breaks down")
        r[j, j] = nrm
        q[:, j] = v / nrm
    return q, r


def mgs(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Modified Gram-Schmidt QR.

    Projections are subtracted one at a time from the running residual, which
    improves the loss of orthogonality to ``O(eps * kappa(A))`` at the price
    of one reduction *per previously orthogonalised vector* — the same
    latency-bound pattern as ScaLAPACK's panel factorization.
    """
    a = _validate(a)
    m, n = a.shape
    q = a.copy()
    r = np.zeros((n, n))
    original_norms = np.linalg.norm(a, axis=0)
    for j in range(n):
        nrm = np.linalg.norm(q[:, j])
        if nrm <= 100 * np.finfo(np.float64).eps * max(original_norms[j], 1e-300):
            raise FactorizationError(f"column {j} is numerically dependent; MGS breaks down")
        r[j, j] = nrm
        q[:, j] /= nrm
        if j + 1 < n:
            r[j, j + 1 :] = q[:, j].T @ q[:, j + 1 :]
            q[:, j + 1 :] -= np.outer(q[:, j], r[j, j + 1 :])
    return q, r


def cgs2(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Classical Gram-Schmidt with re-orthogonalization ("twice is enough").

    Runs CGS and then re-orthogonalises the computed basis once more,
    restoring orthogonality to machine precision at twice the flop cost —
    a useful reference point between raw CGS and TSQR.
    """
    q1, r1 = cgs(a)
    q2, r2 = cgs(q1)
    return q2, r2 @ r1
