"""The experimental platform of paper §V-A: Grid'5000, as a simulated grid.

Everything quantitative in this module comes from the paper:

* four clusters — Bordeaux (93 nodes), Orsay (312), Toulouse (80),
  Sophia-Antipolis (56) — of dual-processor AMD Opteron nodes
  (2.0–2.6 GHz, theoretical peak 8.0–10.4 Gflop/s per processor);
* 32 nodes reserved per cluster, two single-threaded processes per node,
  serial GotoBLAS DGEMM at about 3.67 Gflop/s per process (§V-B), giving the
  "practical upper bound" of ~940 Gflop/s for 256 processes;
* the communication matrix of Fig. 3(a): 890 Mb/s and 0.03–0.07 ms inside a
  cluster, 61–102 Mb/s and 6–9 ms between clusters, 17 µs / 5 Gb/s between
  two processes of one node.

The only quantities not taken from the paper are the small per-message
software overheads (MPI stack cost on top of the raw ping latency); they are
calibration knobs documented in DESIGN.md and default to modest values
(30 µs per intra-cluster message, 5 µs intra-node, nothing extra on the
wide-area links whose millisecond latencies already dominate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.gridsim.kernelmodel import KernelEfficiency, KernelRateModel
from repro.gridsim.machine import ClusterSpec, GridSpec, NodeSpec, ProcessorSpec
from repro.gridsim.network import LinkSpec, NetworkModel
from repro.gridsim.platform import Platform
from repro.gridsim.topology import block_placement

__all__ = [
    "CLUSTER_NAMES",
    "PAPER_LATENCY_MS",
    "PAPER_THROUGHPUT_MBITS",
    "Grid5000Settings",
    "grid5000_grid",
    "grid5000_network",
    "grid5000_kernel_model",
    "grid5000_platform",
    "site_subsets",
]

#: Site order used throughout the experiments (1 site = the first, 2 sites =
#: the first two, 4 sites = all of them), matching the paper's cluster list.
CLUSTER_NAMES = ("orsay", "toulouse", "bordeaux", "sophia")

#: Number of nodes each Grid'5000 cluster had at the time of the paper (§V-A).
CLUSTER_NODE_COUNTS = {"bordeaux": 93, "orsay": 312, "toulouse": 80, "sophia": 56}

#: Fig. 3(a), upper table: one-way latency in milliseconds.
PAPER_LATENCY_MS = {
    ("orsay", "orsay"): 0.07,
    ("toulouse", "toulouse"): 0.03,
    ("bordeaux", "bordeaux"): 0.05,
    ("sophia", "sophia"): 0.06,
    ("orsay", "toulouse"): 7.97,
    ("orsay", "bordeaux"): 6.98,
    ("orsay", "sophia"): 6.12,
    ("toulouse", "bordeaux"): 9.03,
    ("toulouse", "sophia"): 8.18,
    ("bordeaux", "sophia"): 7.18,
}

#: Fig. 3(a), lower table: throughput in Mb/s.
PAPER_THROUGHPUT_MBITS = {
    ("orsay", "orsay"): 890.0,
    ("toulouse", "toulouse"): 890.0,
    ("bordeaux", "bordeaux"): 890.0,
    ("sophia", "sophia"): 890.0,
    ("orsay", "toulouse"): 78.0,
    ("orsay", "bordeaux"): 90.0,
    ("orsay", "sophia"): 102.0,
    ("toulouse", "bordeaux"): 77.0,
    ("toulouse", "sophia"): 90.0,
    ("bordeaux", "sophia"): 83.0,
}


@dataclass(frozen=True)
class Grid5000Settings:
    """Tunable parameters of the simulated Grid'5000 platform.

    The paper-fixed quantities (cluster sizes, link matrix, DGEMM rate) are
    not settable here on purpose; these knobs cover the reservation size and
    the calibration overheads only.
    """

    nodes_per_cluster: int = 32
    processes_per_node: int = 2
    dgemm_gflops_per_process: float = 3.67
    processor_peak_gflops: float = 10.4
    intra_node_latency_us: float = 17.0
    intra_node_throughput_mbits: float = 5000.0
    wan_message_overhead_ms: float = 0.0
    lan_message_overhead_us: float = 30.0
    node_message_overhead_us: float = 5.0
    kernel_efficiency: KernelEfficiency = KernelEfficiency()


def grid5000_grid(settings: Grid5000Settings | None = None) -> GridSpec:
    """The four-cluster Grid'5000 subset used by the paper."""
    settings = settings or Grid5000Settings()
    processor = ProcessorSpec(
        name="AMD Opteron (Grid'5000)",
        peak_gflops=settings.processor_peak_gflops,
        dgemm_gflops=settings.dgemm_gflops_per_process,
    )
    node = NodeSpec(processor=processor, processes_per_node=settings.processes_per_node)
    clusters = tuple(
        ClusterSpec(name=name, n_nodes=CLUSTER_NODE_COUNTS[name], node=node)
        for name in CLUSTER_NAMES
    )
    return GridSpec(name="grid5000", clusters=clusters)


def grid5000_network(settings: Grid5000Settings | None = None) -> NetworkModel:
    """The Fig. 3(a) communication matrix as a :class:`NetworkModel`."""
    settings = settings or Grid5000Settings()
    intra_overrides = {}
    inter: dict[tuple[str, str], LinkSpec] = {}
    for (a, b), latency_ms in PAPER_LATENCY_MS.items():
        throughput = PAPER_THROUGHPUT_MBITS[(a, b)]
        if a == b:
            intra_overrides[a] = LinkSpec.from_ms_mbits(
                latency_ms,
                throughput,
                overhead_ms=settings.lan_message_overhead_us / 1000.0,
            )
        else:
            inter[(a, b)] = LinkSpec.from_ms_mbits(
                latency_ms, throughput, overhead_ms=settings.wan_message_overhead_ms
            )
    return NetworkModel(
        intra_node=LinkSpec.from_us_mbits(
            settings.intra_node_latency_us,
            settings.intra_node_throughput_mbits,
            overhead_us=settings.node_message_overhead_us,
        ),
        intra_cluster=LinkSpec.from_ms_mbits(
            0.06, 890.0, overhead_ms=settings.lan_message_overhead_us / 1000.0
        ),
        intra_cluster_overrides=intra_overrides,
        inter_cluster=inter,
    )


def grid5000_kernel_model(settings: Grid5000Settings | None = None) -> KernelRateModel:
    """Per-process kernel rates calibrated against the paper's §V-B numbers."""
    settings = settings or Grid5000Settings()
    processor = ProcessorSpec(
        name="AMD Opteron (Grid'5000)",
        peak_gflops=settings.processor_peak_gflops,
        dgemm_gflops=settings.dgemm_gflops_per_process,
    )
    return KernelRateModel(processor=processor, efficiency=settings.kernel_efficiency)


def site_subsets(n_sites: int) -> list[str]:
    """Cluster names used for a 1-, 2- or 4-site experiment."""
    if n_sites not in (1, 2, 4):
        raise ConfigurationError(f"the paper uses 1, 2 or 4 sites, got {n_sites}")
    return list(CLUSTER_NAMES[:n_sites])


def grid5000_platform(
    n_sites: int = 4, settings: Grid5000Settings | None = None
) -> Platform:
    """The reserved platform of a 1-, 2- or 4-site experiment (32 nodes/site)."""
    settings = settings or Grid5000Settings()
    grid = grid5000_grid(settings)
    network = grid5000_network(settings)
    placement = block_placement(
        grid,
        nodes_per_cluster=settings.nodes_per_cluster,
        processes_per_node=settings.processes_per_node,
        clusters=site_subsets(n_sites),
    )
    return Platform(
        grid=grid,
        network=network,
        placement=placement,
        kernel_model=grid5000_kernel_model(settings),
        name=f"grid5000-{n_sites}site",
    )
