"""Workload definitions: the matrix shapes swept by the paper's evaluation.

The figures sweep the number of rows ``M`` in powers of two for four column
counts ``N`` in {64, 128, 256, 512}; the widest matrices stop at 8.4M rows
(16 GB ceiling), the skinny ones go up to 33.5M rows.  Figures 6 and 7
additionally sweep the number of domains per cluster in powers of two from 1
to 64 for a few representative ``M``.  This module centralises those sweeps
so benchmarks, examples and EXPERIMENTS.md all refer to the same points, and
provides reduced ("smoke") variants so the default benchmark run finishes in
minutes rather than hours.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.util.random_matrices import random_tall_skinny

__all__ = [
    "PAPER_N_VALUES",
    "DOMAIN_COUNTS_PER_CLUSTER",
    "TABLE2_M",
    "TABLE2_N",
    "TABLE2_SITES",
    "TABLE2_DOMAINS_PER_CLUSTER",
    "CAQR_SWEEP_M",
    "CAQR_SWEEP_M_FULL",
    "CAQR_SWEEP_N",
    "CAQR_SWEEP_TILE",
    "CAQR_SWEEP_SITES",
    "CAQR_PANEL_TREES",
    "DAG_SWEEP_M",
    "DAG_SWEEP_N",
    "DAG_SWEEP_TILE",
    "DAG_SWEEP_SITES",
    "DAG_SWEEP_PRIORITIES",
    "DAG_CHOLESKY_SWEEP_N",
    "DAG_CHOLESKY_SWEEP_TILE",
    "DAG_CHOLESKY_SWEEP_SITES",
    "DAG_FAILURES_SWEEP_N",
    "DAG_FAILURES_SWEEP_TILE",
    "DAG_FAILURES_SWEEP_SITES",
    "DAG_FAILURES_COUNTS",
    "paper_m_values",
    "reduced_m_values",
    "figure67_m_values",
    "generate_matrix",
]

#: Column counts of Figs. 4, 5, 6, 7, 8 (panels a-d).
PAPER_N_VALUES = (64, 128, 256, 512)

#: Domain-per-cluster sweep of Figs. 6 and 7.
DOMAIN_COUNTS_PER_CLUSTER = (1, 2, 4, 8, 16, 32, 64)

#: Table II workload (Q and R both requested), at paper scale: the tallest
#: matrix of the study on the full four-site reservation.  The domain sweep
#: deliberately spans the three regimes of the paper's §III configurations:
#: one multi-process domain per cluster (64 processes each, the ScaLAPACK-
#: style distributed QR inside every domain), one domain per node (2
#: processes each) and one domain per processor (the pure TSQR that the
#: paper's Table II models directly).
TABLE2_M = 33_554_432
TABLE2_N = 64
TABLE2_SITES = 4
TABLE2_DOMAINS_PER_CLUSTER = (1, 32, 64)

#: CAQR workload (paper §VI, "factorization of general matrices on the
#: grid"): the widest column count of the study — past the Property-5
#: crossover where plain TSQR's ``2/3 log2(P) N^3`` combine flops hurt and
#: tiled panels pay off — at million-row scale on the full reservation,
#: each panel reduced by all three tree families.  One row count by default
#: (a 256-rank virtual CAQR at M=2^20 simulates ~16k tile rows per tree);
#: ``REPRO_BENCH_FULL`` extends the benchmark to the taller point.
CAQR_SWEEP_M = (1_048_576,)
CAQR_SWEEP_M_FULL = (1_048_576, 2_097_152)
CAQR_SWEEP_N = 512
CAQR_SWEEP_TILE = 64
CAQR_SWEEP_SITES = 4
CAQR_PANEL_TREES = ("flat", "binary", "grid-hierarchical")

#: DAG-CAQR workload: the dataflow runtime against the bulk-synchronous SPMD
#: CAQR on the same problem — the paper's widest panel at million-row scale
#: on the full four-site reservation.  The tile is doubled relative to the
#: SPMD sweep (same algorithm family, ~160k tasks instead of ~1.2M) so one
#: figure run covering all three priority policies stays in CLI territory.
DAG_SWEEP_M = (1_048_576,)
DAG_SWEEP_N = 512
DAG_SWEEP_TILE = 128
DAG_SWEEP_SITES = 4
DAG_SWEEP_PRIORITIES = ("critical-path", "panel", "fifo")

#: DAG-Cholesky workload: the first non-QR scenario of the algorithm
#: registry on the full four-site reservation.  A square 8192-point matrix
#: at tile 128 yields a 64 x 64 tile grid (~45k potrf/trsm/syrk/gemm tasks)
#: — large enough that the priority policies separate, small enough that one
#: figure run covering all three stays in CLI territory.
DAG_CHOLESKY_SWEEP_N = (8_192,)
DAG_CHOLESKY_SWEEP_TILE = 128
DAG_CHOLESKY_SWEEP_SITES = 4

#: DAG-failures workload: the fault-tolerance sweep (makespan overhead of
#: re-execution recovery versus the number of injected rank deaths).  A
#: 4096-point tiled Cholesky on the full reservation — half the order of the
#: policy sweep, because every failing point simulates a full recovery on
#: top of its memoised failure-free baseline.  Deaths are staggered across
#: the first three quarters of the baseline makespan so early failures (most
#: lost work) and late failures (most completed work to re-execute) both
#: appear in one curve.
DAG_FAILURES_SWEEP_N = (4_096,)
DAG_FAILURES_SWEEP_TILE = 128
DAG_FAILURES_SWEEP_SITES = 4
DAG_FAILURES_COUNTS = (0, 1, 2, 4)

#: Element cap of the sweeps: the widest matrix of the study is
#: 8,388,608 x 512 (Fig. 4d/5d), i.e. 2**32 double-precision elements.
MAX_ELEMENTS = 2**32
#: Row cap of the sweeps: the tallest matrix is 33,554,432 x 64 (16 GB,
#: paper §V-A).
MAX_ROWS = 33_554_432


def paper_m_values(n: int) -> list[int]:
    """Row counts swept for column count ``n`` (powers of two).

    The paper sweeps M from ~1e5 (a matrix small enough to be latency-bound)
    up to the memory limit: 33.5M rows for N=64/128, 8.4M rows for N=256/512.
    """
    if n not in PAPER_N_VALUES:
        raise ConfigurationError(f"N={n} is not part of the paper's sweep {PAPER_N_VALUES}")
    values = []
    m = 131_072  # 2**17
    while m * n <= MAX_ELEMENTS and m <= MAX_ROWS:
        values.append(m)
        m *= 2
    return values


def reduced_m_values(n: int, points: int = 4) -> list[int]:
    """A subset of :func:`paper_m_values` spanning the same range.

    Keeps the first value, the last value, and logarithmically spaced interior
    points — enough to reproduce the shape of each curve while keeping the
    default benchmark run short.
    """
    full = paper_m_values(n)
    if points >= len(full):
        return full
    if points < 2:
        raise ConfigurationError("at least two points are needed")
    idx = sorted({round(i * (len(full) - 1) / (points - 1)) for i in range(points)})
    return [full[i] for i in idx]


def figure67_m_values(n: int, *, single_site: bool = False) -> list[int]:
    """Row counts used by the domain sweeps of Fig. 6 (grid) and Fig. 7 (one site)."""
    if n == 64:
        return [65_536, 131_072, 1_048_576, 8_388_608] if single_site else [
            131_072,
            524_288,
            4_194_304,
            33_554_432,
        ]
    if n == 128:
        return [262_144, 524_288, 4_194_304, 33_554_432]
    if n in (256, 512):
        return [65_536, 131_072, 1_048_576, 2_097_152] if single_site else [
            262_144,
            524_288,
            2_097_152,
            8_388_608,
        ]
    raise ConfigurationError(f"N={n} is not part of the paper's sweep {PAPER_N_VALUES}")


def generate_matrix(m: int, n: int, *, seed: int = 0):
    """Random dense tall-and-skinny matrix for real-payload runs."""
    return random_tall_skinny(m, n, seed=seed)
