"""Reference values reported by the paper, for shape comparisons.

The paper publishes its results as line plots, not tables, so the values
below are *approximate readings* of the figures (digitised by eye, +/- 10-20%).
They are used only to check that the reproduction preserves the qualitative
shape of each result — who wins, by roughly what factor, how curves scale —
never to assert exact agreement.  EXPERIMENTS.md records the measured values
next to these references.
"""

from __future__ import annotations

__all__ = [
    "PAPER_FIG4_GFLOPS",
    "PAPER_FIG5_GFLOPS",
    "PAPER_QUALITATIVE_CLAIMS",
    "paper_reference",
]

#: Fig. 4 (ScaLAPACK): approximate Gflop/s at the largest M of each panel,
#: keyed by (N, number of sites).
PAPER_FIG4_GFLOPS: dict[tuple[int, int], float] = {
    (64, 1): 22.0,
    (64, 2): 28.0,
    (64, 4): 33.0,
    (128, 1): 28.0,
    (128, 2): 40.0,
    (128, 4): 55.0,
    (256, 1): 42.0,
    (256, 2): 50.0,
    (256, 4): 55.0,
    (512, 1): 70.0,
    (512, 2): 78.0,
    (512, 4): 85.0,
}

#: Fig. 5 (QCG-TSQR, best domain count): approximate Gflop/s at the largest M
#: of each panel, keyed by (N, number of sites).
PAPER_FIG5_GFLOPS: dict[tuple[int, int], float] = {
    (64, 1): 26.0,
    (64, 2): 50.0,
    (64, 4): 95.0,
    (128, 1): 37.0,
    (128, 2): 72.0,
    (128, 4): 140.0,
    (256, 1): 48.0,
    (256, 2): 90.0,
    (256, 4): 175.0,
    (512, 1): 70.0,
    (512, 2): 135.0,
    (512, 4): 256.0,
}

#: The headline qualitative claims of §V, with the section they come from.
PAPER_QUALITATIVE_CLAIMS: dict[str, str] = {
    "tsqr_beats_scalapack": "TSQR consistently achieves higher performance than ScaLAPACK (Fig. 8).",
    "tsqr_scales_with_sites": "For very tall matrices TSQR performance scales almost linearly with the number of sites (speed-up close to 4 on 4 sites, Fig. 5).",
    "scalapack_limited_speedup": "ScaLAPACK's grid speed-up hardly surpasses 2.0 on four sites and only for very tall matrices (Fig. 4).",
    "scalapack_single_site_small_m": "For M <= 5e6 the fastest ScaLAPACK execution uses a single site (Fig. 4).",
    "tsqr_multi_site_moderate_m": "For M >= 5e5 the fastest TSQR execution uses all four sites (Fig. 5).",
    "domains_help": "TSQR performance globally increases with the number of domains per cluster (Figs. 6-7).",
    "performance_below_practical_peak": "All measured rates are a small fraction of the ~940 Gflop/s practical upper bound (Property 2).",
    "two_inter_cluster_messages": "The tuned reduction tree needs one inter-cluster message per additional site per reduction, independent of N (Fig. 2).",
}


def paper_reference(figure: str, n: int, n_sites: int) -> float | None:
    """Approximate paper value (Gflop/s at the largest M) for a figure panel.

    ``figure`` is ``"fig4"`` or ``"fig5"``; returns ``None`` when the paper
    does not report that combination.
    """
    table = PAPER_FIG4_GFLOPS if figure == "fig4" else PAPER_FIG5_GFLOPS
    return table.get((n, n_sites))
