"""Regeneration of every figure and table of the paper's evaluation (§V).

Each ``figure*``/``table*`` function returns a :class:`FigureData` (series of
(x, y) points plus metadata) or a list of comparison rows; the benchmark
harness prints them and EXPERIMENTS.md records them against the paper's
curves.  The underlying simulations run at paper scale with virtual payloads
through :class:`~repro.experiments.runner.ExperimentRunner`.

Index
-----
* :func:`figure3_network`  — Fig. 3(a): inter/intra-cluster latency & throughput.
* :func:`figure4`          — Fig. 4: ScaLAPACK Gflop/s vs M (1/2/4 sites).
* :func:`figure5`          — Fig. 5: QCG-TSQR (best #domains) Gflop/s vs M.
* :func:`figure6`          — Fig. 6: #domains/cluster sweep on four sites.
* :func:`figure7`          — Fig. 7: #domains sweep on a single site.
* :func:`figure8`          — Fig. 8: TSQR (best) vs ScaLAPACK (best).
* :func:`table1` / :func:`table2` — Tables I/II: message / volume / flop counts,
  analytic model vs counts measured from the simulation traces.
* :func:`caqr_sweep`   — §VI follow-up: general-matrix CAQR at paper scale,
  measured counts vs :func:`repro.model.costs.caqr_costs` per panel tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.experiments.grid5000 import CLUSTER_NAMES, PAPER_LATENCY_MS, PAPER_THROUGHPUT_MBITS
from repro.experiments.runner import ExperimentPoint, ExperimentRunner, PointSpec
from repro.dag.analysis import mean_idle_fraction, rank_utilization
from repro.experiments.workloads import (
    CAQR_PANEL_TREES,
    CAQR_SWEEP_M,
    CAQR_SWEEP_N,
    CAQR_SWEEP_SITES,
    CAQR_SWEEP_TILE,
    DAG_CHOLESKY_SWEEP_N,
    DAG_CHOLESKY_SWEEP_SITES,
    DAG_CHOLESKY_SWEEP_TILE,
    DAG_FAILURES_COUNTS,
    DAG_FAILURES_SWEEP_N,
    DAG_FAILURES_SWEEP_SITES,
    DAG_FAILURES_SWEEP_TILE,
    DAG_SWEEP_M,
    DAG_SWEEP_N,
    DAG_SWEEP_PRIORITIES,
    DAG_SWEEP_SITES,
    DAG_SWEEP_TILE,
    DOMAIN_COUNTS_PER_CLUSTER,
    TABLE2_DOMAINS_PER_CLUSTER,
    TABLE2_M,
    TABLE2_N,
    TABLE2_SITES,
    figure67_m_values,
    reduced_m_values,
)
from repro.gridsim.executor import run_spmd
from repro.model.costs import caqr_costs, dag_cholesky_costs, scalapack_costs, tsqr_costs
from repro.util.units import DOUBLE_BYTES

__all__ = [
    "FigureSeries",
    "FigureData",
    "figure3_network",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "table1",
    "table2",
    "table2_sweep",
    "caqr_sweep",
    "dag_caqr_sweep",
    "dag_cholesky_sweep",
    "dag_failures_sweep",
]


@dataclass
class FigureSeries:
    """One curve of a figure."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def xs(self) -> list[float]:
        """X coordinates of the curve."""
        return [x for x, _ in self.points]

    def ys(self) -> list[float]:
        """Y coordinates of the curve."""
        return [y for _, y in self.points]


@dataclass
class FigureData:
    """All curves of one figure panel, plus labelling metadata."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[FigureSeries] = field(default_factory=list)

    def series_by_label(self, label: str) -> FigureSeries:
        """Return the curve with the given label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def as_mapping(self) -> dict[str, list[tuple[float, float]]]:
        """Mapping form used by the ASCII plotting helper."""
        return {s.label: list(s.points) for s in self.series}

    def as_rows(self) -> list[dict[str, object]]:
        """Long-form rows (one per point) for CSV output."""
        rows = []
        for s in self.series:
            for x, y in s.points:
                rows.append(
                    {"figure": self.figure_id, "series": s.label, self.xlabel: x, self.ylabel: y}
                )
        return rows


# ---------------------------------------------------------------------------
# Fig. 3(a): network characteristics
# ---------------------------------------------------------------------------

def figure3_network(runner: ExperimentRunner | None = None) -> list[dict[str, object]]:
    """Measure the simulated latency/throughput matrix with ping-pong runs.

    For every cluster pair the first rank of each cluster exchanges an empty
    message (latency estimate) and a 4 MB message (throughput estimate); the
    measured values are reported next to the published Table 3(a) numbers.
    """
    runner = runner or ExperimentRunner()
    platform = runner.platform(4)
    placement = platform.placement
    per_cluster = {name: placement.ranks_of_cluster(name) for name in CLUSTER_NAMES}
    payload_bytes = 4 * 1024 * 1024

    def _pingpong(ctx, rank_a: int, rank_b: int, nbytes: int):
        me = ctx.comm.rank
        if me == rank_a:
            ctx.comm.send(None, dest=rank_b, tag="ping", nbytes=nbytes)
            yield from ctx.comm.recv(source=rank_b, tag="pong")
            return ctx.clock()
        if me == rank_b:
            yield from ctx.comm.recv(source=rank_a, tag="ping")
            ctx.comm.send(None, dest=rank_a, tag="pong", nbytes=nbytes)
        return None

    rows: list[dict[str, object]] = []
    for i, a in enumerate(CLUSTER_NAMES):
        for b in CLUSTER_NAMES[i:]:
            if a == b:
                rank_a, rank_b = per_cluster[a][0], per_cluster[a][2]
            else:
                rank_a, rank_b = per_cluster[a][0], per_cluster[b][0]
            small = run_spmd(platform, _pingpong, rank_a, rank_b, 0)
            large = run_spmd(platform, _pingpong, rank_a, rank_b, payload_bytes)
            rtt_small = small.results[rank_a]
            rtt_large = large.results[rank_a]
            latency_ms = rtt_small / 2.0 * 1e3
            transfer_s = max((rtt_large - rtt_small) / 2.0, 1e-12)
            throughput_mbits = payload_bytes * 8.0 / transfer_s / 1e6
            key = (a, b) if (a, b) in PAPER_LATENCY_MS else (b, a)
            rows.append(
                {
                    "from": a,
                    "to": b,
                    "measured latency (ms)": round(latency_ms, 3),
                    "paper latency (ms)": PAPER_LATENCY_MS[key],
                    "measured throughput (Mb/s)": round(throughput_mbits, 1),
                    "paper throughput (Mb/s)": PAPER_THROUGHPUT_MBITS[key],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 4 / Fig. 5: performance versus M for 1, 2 and 4 sites
# ---------------------------------------------------------------------------

def figure4(
    runner: ExperimentRunner,
    n: int,
    *,
    m_values: list[int] | None = None,
    sites: tuple[int, ...] = (1, 2, 4),
    want_q: bool = False,
) -> FigureData:
    """ScaLAPACK performance versus the number of rows (paper Fig. 4)."""
    m_values = m_values or reduced_m_values(n)
    data = FigureData(
        figure_id=f"fig4-N{n}" + ("-Q" if want_q else ""),
        title=f"ScaLAPACK performance, N={n}" + (", Q included" if want_q else ""),
        xlabel="M",
        ylabel="Gflop/s",
    )
    runner.prefetch(runner.scalapack_specs(m_values, n, sites, want_q=want_q))
    for s in sites:
        series = FigureSeries(label=f"{s} site(s)")
        for m in m_values:
            point = runner.scalapack_point(m, n, s, want_q=want_q)
            series.points.append((float(m), point.gflops))
        data.series.append(series)
    return data


def figure5(
    runner: ExperimentRunner,
    n: int,
    *,
    m_values: list[int] | None = None,
    sites: tuple[int, ...] = (1, 2, 4),
    domain_candidates: tuple[int, ...] = (32, 64),
    want_q: bool = False,
) -> FigureData:
    """QCG-TSQR performance (best #domains) versus M (paper Fig. 5)."""
    m_values = m_values or reduced_m_values(n)
    data = FigureData(
        figure_id=f"fig5-N{n}" + ("-Q" if want_q else ""),
        title=f"TSQR performance (best #domains), N={n}" + (", Q included" if want_q else ""),
        xlabel="M",
        ylabel="Gflop/s",
    )
    runner.prefetch(
        runner.tsqr_specs(m_values, n, sites, domain_candidates, want_q=want_q)
    )
    for s in sites:
        series = FigureSeries(label=f"{s} site(s)")
        for m in m_values:
            point = runner.best_tsqr_point(m, n, s, domain_candidates, want_q=want_q)
            series.points.append((float(m), point.gflops))
        data.series.append(series)
    return data


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7: effect of the number of domains
# ---------------------------------------------------------------------------

def figure6(
    runner: ExperimentRunner,
    n: int,
    *,
    m_values: list[int] | None = None,
    domain_counts: tuple[int, ...] = DOMAIN_COUNTS_PER_CLUSTER,
    want_q: bool = False,
) -> FigureData:
    """Effect of domains/cluster on TSQR over all four sites (paper Fig. 6)."""
    m_values = m_values or figure67_m_values(n)
    data = FigureData(
        figure_id=f"fig6-N{n}" + ("-Q" if want_q else ""),
        title=f"Effect of #domains per cluster (4 sites), N={n}"
        + (", Q included" if want_q else ""),
        xlabel="domains per cluster",
        ylabel="Gflop/s",
    )
    runner.prefetch(runner.tsqr_specs(m_values, n, (4,), domain_counts, want_q=want_q))
    for m in m_values:
        series = FigureSeries(label=f"M = {m:,}")
        for dpc in domain_counts:
            point = runner.tsqr_point(m, n, 4, dpc, want_q=want_q)
            series.points.append((float(dpc), point.gflops))
        data.series.append(series)
    return data


def figure7(
    runner: ExperimentRunner,
    n: int,
    *,
    m_values: list[int] | None = None,
    domain_counts: tuple[int, ...] = DOMAIN_COUNTS_PER_CLUSTER,
    want_q: bool = False,
) -> FigureData:
    """Effect of the number of domains on TSQR on a single site (paper Fig. 7)."""
    m_values = m_values or figure67_m_values(n, single_site=True)
    data = FigureData(
        figure_id=f"fig7-N{n}" + ("-Q" if want_q else ""),
        title=f"Effect of #domains (1 site), N={n}" + (", Q included" if want_q else ""),
        xlabel="domains",
        ylabel="Gflop/s",
    )
    runner.prefetch(runner.tsqr_specs(m_values, n, (1,), domain_counts, want_q=want_q))
    for m in m_values:
        series = FigureSeries(label=f"M = {m:,}")
        for dpc in domain_counts:
            point = runner.tsqr_point(m, n, 1, dpc, want_q=want_q)
            series.points.append((float(dpc), point.gflops))
        data.series.append(series)
    return data


# ---------------------------------------------------------------------------
# Fig. 8: best TSQR against best ScaLAPACK
# ---------------------------------------------------------------------------

def figure8(
    runner: ExperimentRunner,
    n: int,
    *,
    m_values: list[int] | None = None,
    sites: tuple[int, ...] = (1, 2, 4),
    domain_candidates: tuple[int, ...] = (32, 64),
    want_q: bool = False,
) -> FigureData:
    """TSQR (best configuration) versus ScaLAPACK (best configuration), Fig. 8."""
    m_values = m_values or reduced_m_values(n)
    data = FigureData(
        figure_id=f"fig8-N{n}" + ("-Q" if want_q else ""),
        title=f"TSQR (best) vs ScaLAPACK (best), N={n}" + (", Q included" if want_q else ""),
        xlabel="M",
        ylabel="Gflop/s",
    )
    runner.prefetch(
        runner.tsqr_specs(m_values, n, sites, domain_candidates, want_q=want_q)
        + runner.scalapack_specs(m_values, n, sites, want_q=want_q)
    )
    tsqr_series = FigureSeries(label="TSQR (best)")
    scal_series = FigureSeries(label="ScaLAPACK (best)")
    for m in m_values:
        best_tsqr = runner.best_over_sites(
            "tsqr", m, n, sites, domain_candidates=domain_candidates, want_q=want_q
        )
        best_scal = runner.best_over_sites("scalapack", m, n, sites, want_q=want_q)
        tsqr_series.points.append((float(m), best_tsqr.gflops))
        scal_series.points.append((float(m), best_scal.gflops))
    data.series = [tsqr_series, scal_series]
    return data


# ---------------------------------------------------------------------------
# Tables I and II: counts measured from traces vs analytic model
# ---------------------------------------------------------------------------

def _measured_counts(point: ExperimentPoint, p: int) -> tuple[int, float, float]:
    """Trace counts of one run: (max msgs/rank, volume in doubles / P, max flops/rank)."""
    trace = point.trace
    volume_doubles = sum(trace.bytes_by_link.values()) / DOUBLE_BYTES
    return trace.messages_per_rank_max, volume_doubles / p, trace.flops_per_rank_max


def _count_rows(
    runner: ExperimentRunner, m: int, n: int, n_sites: int, *, want_q: bool
) -> list[dict[str, object]]:
    p = runner.processes(n_sites)
    dpc = runner.processes_per_cluster(n_sites)
    scal_model = scalapack_costs(m, n, p, want_q=want_q)
    tsqr_model = tsqr_costs(m, n, p, want_q=want_q)
    scal_point = runner.scalapack_point(m, n, n_sites, want_q=want_q)
    tsqr_point = runner.tsqr_point(m, n, n_sites, dpc, want_q=want_q)
    rows = []
    for name, model, point in (
        ("ScaLAPACK QR2", scal_model, scal_point),
        ("TSQR", tsqr_model, tsqr_point),
    ):
        msgs, volume_per_p, flops = _measured_counts(point, p)
        rows.append(
            {
                "algorithm": name,
                "M": m,
                "N": n,
                "P": p,
                "Q requested": want_q,
                "model # msg (critical path)": round(model.messages, 1),
                "measured # msg (max per rank)": msgs,
                "model volume (doubles)": round(model.volume_doubles, 0),
                "measured volume (doubles, total/P)": round(volume_per_p, 0),
                "model flops (per domain)": round(model.flops, 0),
                "measured flops (max per rank)": round(flops, 0),
                "Gflop/s": round(point.gflops, 2),
            }
        )
    return rows


def table1(
    runner: ExperimentRunner, *, m: int = 1_048_576, n: int = 64, n_sites: int = 4
) -> list[dict[str, object]]:
    """Table I: counts when only the R factor is requested."""
    return _count_rows(runner, m, n, n_sites, want_q=False)


def table2(
    runner: ExperimentRunner, *, m: int = 1_048_576, n: int = 64, n_sites: int = 4
) -> list[dict[str, object]]:
    """Table II: counts when both the Q and the R factors are requested."""
    return _count_rows(runner, m, n, n_sites, want_q=True)


def table2_sweep(
    runner: ExperimentRunner,
    *,
    m: int = TABLE2_M,
    n: int = TABLE2_N,
    n_sites: int = TABLE2_SITES,
    domain_counts: tuple[int, ...] = TABLE2_DOMAINS_PER_CLUSTER,
    include_scalapack: bool = True,
) -> list[dict[str, object]]:
    """Table II opened across the domain sweep: Property 1, measured vs model.

    Every domains-per-cluster configuration is simulated twice — R only,
    then Q and R — and the measured increase of messages, volume and flops
    is reported next to the analytic prediction of :mod:`repro.model.costs`
    (the model ratios are exactly 2: Property 1).  The one-domain-per-process
    rows are the pure TSQR that the paper's Table II models directly and
    reproduce the 2x within a few percent; the multi-process-domain rows
    exercise the distributed ``PDORGQR`` finish of the downward sweep, whose
    blocked application communicates less and computes more than the paper's
    uniform doubling (the same deviation the ScaLAPACK baseline row shows).
    """
    p = runner.processes(n_sites)

    def _row(name, dpc, r_point, q_point, model_r, model_q):
        msg_r, vol_r, flop_r = _measured_counts(r_point, p)
        msg_q, vol_q, flop_q = _measured_counts(q_point, p)
        return {
            "algorithm": name,
            "M": m,
            "N": n,
            "P": p,
            "domains/cluster": dpc if dpc is not None else "-",
            "processes/domain": p // (dpc * n_sites) if dpc is not None else "-",
            "msgs (R)": msg_r,
            "msgs (Q+R)": msg_q,
            "msg ratio": round(msg_q / msg_r, 3),
            "volume/P (R)": round(vol_r, 0),
            "volume/P (Q+R)": round(vol_q, 0),
            "volume ratio": round(vol_q / vol_r, 3),
            "flops (R)": round(flop_r, 0),
            "flops (Q+R)": round(flop_q, 0),
            "flop ratio": round(flop_q / flop_r, 3),
            "model msg ratio": round(model_q.messages / model_r.messages, 3),
            "model volume ratio": round(model_q.volume_doubles / model_r.volume_doubles, 3),
            "model flop ratio": round(model_q.flops / model_r.flops, 3),
            "time ratio": round(q_point.time_s / r_point.time_s, 3),
        }

    sweep_specs = runner.tsqr_specs([m], n, (n_sites,), domain_counts) + runner.tsqr_specs(
        [m], n, (n_sites,), domain_counts, want_q=True
    )
    if include_scalapack:
        sweep_specs += runner.scalapack_specs([m], n, (n_sites,))
        sweep_specs += runner.scalapack_specs([m], n, (n_sites,), want_q=True)
    runner.prefetch(sweep_specs)
    rows: list[dict[str, object]] = []
    for dpc in domain_counts:
        n_domains = dpc * n_sites
        rows.append(
            _row(
                "TSQR",
                dpc,
                runner.tsqr_point(m, n, n_sites, dpc, want_q=False),
                runner.tsqr_point(m, n, n_sites, dpc, want_q=True),
                tsqr_costs(m, n, n_domains),
                tsqr_costs(m, n, n_domains, want_q=True),
            )
        )
    if include_scalapack:
        rows.append(
            _row(
                "ScaLAPACK QR2",
                None,
                runner.scalapack_point(m, n, n_sites),
                runner.scalapack_point(m, n, n_sites, want_q=True),
                scalapack_costs(m, n, p),
                scalapack_costs(m, n, p, want_q=True),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# CAQR sweep: general matrices on the grid (paper §VI), measured vs model
# ---------------------------------------------------------------------------

def caqr_sweep(
    runner: ExperimentRunner,
    *,
    n: int = CAQR_SWEEP_N,
    m_values: tuple[int, ...] | list[int] | None = None,
    n_sites: int = CAQR_SWEEP_SITES,
    tile_size: int = CAQR_SWEEP_TILE,
    panel_trees: tuple[str, ...] = CAQR_PANEL_TREES,
) -> list[dict[str, object]]:
    """Distributed CAQR at paper scale: measured counts next to the model.

    The paper's closing follow-up ("factorization of general matrices on the
    grid"), opened as an artefact: for every row count and panel-tree family
    a virtual general-matrix CAQR runs on the full reservation, and the
    measured message count, exchanged volume and maximum per-rank flops are
    reported as ratios against :func:`repro.model.costs.caqr_costs` (the
    benchmark asserts every ratio within 10%).  Inter-cluster message counts
    expose the tree effect of paper Fig. 2 on the panel reductions: the
    grid-hierarchical tree pays one wide-area message per cluster pair per
    panel, the topology-oblivious binary tree considerably more.
    """
    p = runner.processes(n_sites)
    platform = runner.platform(n_sites)
    clusters = [platform.placement.cluster_of(r) for r in range(p)]

    def _ratio(measured: float, predicted: float) -> float:
        # A single tile row (or a single participating rank) legitimately
        # predicts zero messages and volume; agreement then means the
        # measurement is zero too, not a division.
        if predicted == 0:
            return 1.0 if measured == 0 else float("inf")
        return round(measured / predicted, 3)

    sweep_m = tuple(m_values) if m_values is not None else CAQR_SWEEP_M
    runner.prefetch(
        PointSpec(
            algorithm="caqr", m=m, n=n, n_sites=n_sites,
            tree_kind=tree, tile_size=tile_size,
        )
        for m in sweep_m
        for tree in panel_trees
    )
    rows: list[dict[str, object]] = []
    for m in sweep_m:
        for tree in panel_trees:
            point = runner.caqr_point(m, n, n_sites, tile_size=tile_size, panel_tree=tree)
            model = caqr_costs(
                m, n, p, tile_size=tile_size, panel_tree=tree, clusters=clusters
            )
            measured_msgs = point.trace.total_messages
            measured_volume = sum(point.trace.bytes_by_link.values()) / DOUBLE_BYTES
            measured_flops = point.trace.flops_per_rank_max
            rows.append(
                {
                    "algorithm": "CAQR",
                    "M": m,
                    "N": n,
                    "P": p,
                    "tile": tile_size,
                    "panel tree": tree,
                    "msgs (measured)": measured_msgs,
                    "msgs (model)": round(model.messages, 0),
                    "msg ratio": _ratio(measured_msgs, model.messages),
                    "volume (doubles, measured)": round(measured_volume, 0),
                    "volume (doubles, model)": round(model.volume_doubles, 0),
                    "volume ratio": _ratio(measured_volume, model.volume_doubles),
                    "flops/rank max (measured)": round(measured_flops, 0),
                    "flops/rank max (model)": round(model.flops, 0),
                    "flop ratio": _ratio(measured_flops, model.flops),
                    "inter-cluster msgs": point.inter_cluster_messages,
                    "Gflop/s": round(point.gflops, 2),
                    "time (s)": round(point.time_s, 4),
                    # Per-rank utilisation (from the trace's busy/comm-wait
                    # second counters), averaged over the active ranks —
                    # ranks owning no tile rows would only dilute the mean.
                    "idle fraction (mean)": round(
                        mean_idle_fraction(
                            point.trace, point.time_s, _active_ranks(point.trace)
                        ),
                        4,
                    ),
                    "comm wait max (s)": round(
                        max(point.trace.comm_wait_s_per_rank, default=0.0), 4
                    ),
                }
            )
    return rows


def _active_ranks(trace) -> list[int]:
    """Ranks that executed at least one kernel (owned work) in a run."""
    return [r for r, busy in enumerate(trace.busy_s_per_rank) if busy > 0.0]


# ---------------------------------------------------------------------------
# DAG-CAQR sweep: dataflow vs bulk-synchronous execution of the same problem
# ---------------------------------------------------------------------------

def dag_caqr_sweep(
    runner: ExperimentRunner,
    *,
    n: int = DAG_SWEEP_N,
    m_values: tuple[int, ...] | list[int] | None = None,
    n_sites: int = DAG_SWEEP_SITES,
    tile_size: int = DAG_SWEEP_TILE,
    panel_tree: str = "binary",
    placement: str = "block",
    priorities: tuple[str, ...] = DAG_SWEEP_PRIORITIES,
) -> list[dict[str, object]]:
    """Task-DAG CAQR against SPMD CAQR on the same problem, per priority.

    For every row count and priority policy the same tiled factorization is
    simulated twice — once through the bulk-synchronous SPMD program, once
    through the task-DAG runtime — and the row records the makespans next to
    the exact critical-path lower bound and the per-rank idle breakdown.
    The three inequalities the artefact demonstrates, per point:
    ``critical path <= DAG makespan <= SPMD makespan`` (dataflow execution
    hides the latency the static schedule pays, but no schedule beats the
    dependence chain).
    """
    p = runner.processes(n_sites)
    sweep_m = tuple(m_values) if m_values is not None else DAG_SWEEP_M
    specs = [
        PointSpec(
            algorithm="caqr", m=m, n=n, n_sites=n_sites,
            tree_kind=panel_tree, tile_size=tile_size,
        )
        for m in sweep_m
    ] + [
        PointSpec(
            algorithm="caqr", m=m, n=n, n_sites=n_sites,
            tree_kind=panel_tree, tile_size=tile_size,
            runtime="dag", placement=placement, priority=prio,
        )
        for m in sweep_m
        for prio in priorities
    ]
    runner.prefetch(specs)
    rows: list[dict[str, object]] = []
    for m in sweep_m:
        spmd = runner.caqr_point(m, n, n_sites, tile_size=tile_size, panel_tree=panel_tree)
        for prio in priorities:
            dag = runner.dag_caqr_point(
                m, n, n_sites, tile_size=tile_size, panel_tree=panel_tree,
                placement=placement, priority=prio,
            )
            active = _active_ranks(dag.trace)
            usage = rank_utilization(dag.trace, dag.time_s, active)
            idle_mean = mean_idle_fraction(dag.trace, dag.time_s, active)
            idle_max = max((u.idle_fraction() for u in usage), default=0.0)
            cp = dag.critical_path_s or 0.0
            rows.append(
                {
                    "algorithm": "DAG-CAQR",
                    "M": m,
                    "N": n,
                    "P": p,
                    "tile": tile_size,
                    "panel tree": panel_tree,
                    "placement": placement,
                    "priority": prio,
                    "DAG makespan (s)": round(dag.time_s, 4),
                    "SPMD makespan (s)": round(spmd.time_s, 4),
                    "speedup vs SPMD": round(spmd.time_s / dag.time_s, 3)
                    if dag.time_s > 0
                    else float("inf"),
                    "critical path (s)": round(cp, 4),
                    "CP / DAG makespan": round(cp / dag.time_s, 3)
                    if dag.time_s > 0
                    else 0.0,
                    "idle fraction (mean)": round(idle_mean, 4),
                    "idle fraction (max)": round(idle_max, 4),
                    "comm wait max (s)": round(
                        max(dag.trace.comm_wait_s_per_rank, default=0.0), 4
                    ),
                    "msgs (DAG)": dag.total_messages,
                    "msgs (SPMD)": spmd.total_messages,
                    "inter-cluster msgs": dag.inter_cluster_messages,
                    "Gflop/s": round(dag.gflops, 2),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# DAG-Cholesky sweep: the first non-QR scenario of the algorithm registry
# ---------------------------------------------------------------------------

def dag_cholesky_sweep(
    runner: ExperimentRunner,
    *,
    n_values: tuple[int, ...] | list[int] | None = None,
    n_sites: int = DAG_CHOLESKY_SWEEP_SITES,
    tile_size: int = DAG_CHOLESKY_SWEEP_TILE,
    placement: str = "block",
    priorities: tuple[str, ...] = DAG_SWEEP_PRIORITIES,
) -> list[dict[str, object]]:
    """Task-DAG tiled Cholesky per priority, measured counts next to the model.

    The registry's first non-QR scenario at paper-reservation scale: for
    every matrix order and priority policy a virtual tiled Cholesky runs
    through the task-DAG runtime, and the row records the makespan against
    the exact flop-weighted critical path plus the measured message count
    and exchanged volume as ratios against
    :func:`repro.model.costs.dag_cholesky_costs`.  Both derive from the same
    communication plan, so the ratios are exactly 1.0 — the benchmark gate
    allows 10% — while the idle and critical-path columns show how the
    ``potrf`` chain, far shorter than QR's panel reductions, leaves the
    priority policies much closer together.
    """
    p = runner.processes(n_sites)

    def _ratio(measured: float, predicted: float) -> float:
        if predicted == 0:
            return 1.0 if measured == 0 else float("inf")
        return round(measured / predicted, 3)

    sweep_n = tuple(n_values) if n_values is not None else DAG_CHOLESKY_SWEEP_N
    runner.prefetch(
        PointSpec(
            algorithm="cholesky", m=n, n=n, n_sites=n_sites,
            tile_size=tile_size, runtime="dag",
            placement=placement, priority=prio,
        )
        for n in sweep_n
        for prio in priorities
    )
    rows: list[dict[str, object]] = []
    for n in sweep_n:
        model = dag_cholesky_costs(n, p, tile_size=tile_size, placement=placement)
        for prio in priorities:
            point = runner.dag_cholesky_point(
                n, n_sites, tile_size=tile_size, placement=placement, priority=prio
            )
            active = _active_ranks(point.trace)
            usage = rank_utilization(point.trace, point.time_s, active)
            idle_mean = mean_idle_fraction(point.trace, point.time_s, active)
            idle_max = max((u.idle_fraction() for u in usage), default=0.0)
            cp = point.critical_path_s or 0.0
            measured_msgs = point.trace.total_messages
            measured_volume = sum(point.trace.bytes_by_link.values()) / DOUBLE_BYTES
            rows.append(
                {
                    "algorithm": "DAG-Cholesky",
                    "N": n,
                    "P": p,
                    "tile": tile_size,
                    "placement": placement,
                    "priority": prio,
                    "makespan (s)": round(point.time_s, 4),
                    "critical path (s)": round(cp, 4),
                    "CP / makespan": round(cp / point.time_s, 3)
                    if point.time_s > 0
                    else 0.0,
                    "idle fraction (mean)": round(idle_mean, 4),
                    "idle fraction (max)": round(idle_max, 4),
                    "comm wait max (s)": round(
                        max(point.trace.comm_wait_s_per_rank, default=0.0), 4
                    ),
                    "msgs (measured)": measured_msgs,
                    "msgs (model)": round(model.messages, 0),
                    "msg ratio": _ratio(measured_msgs, model.messages),
                    "volume (doubles, measured)": round(measured_volume, 0),
                    "volume (doubles, model)": round(model.volume_doubles, 0),
                    "volume ratio": _ratio(measured_volume, model.volume_doubles),
                    "inter-cluster msgs": point.inter_cluster_messages,
                    "Gflop/s": round(point.gflops, 2),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# DAG-failures sweep: the cost of surviving rank deaths
# ---------------------------------------------------------------------------

def failure_schedule_pairs(
    count: int, p: int, busy_s_per_rank: Sequence[float]
) -> tuple[tuple[int, float], ...]:
    """Deterministic ``(rank, at_time)`` pairs for a ``count``-failure point.

    Victims walk the rank space with a stride coprime to any power-of-two
    rank count (so they never collide and never all share one node).  Each
    death time sits inside *that rank's own* compute window — between 25%
    and 75% of its failure-free busy seconds — which guarantees the
    deadline fires: deadlines are checked at op entries and compute
    charges, and a rank's clock at its trailing-barrier entry is at least
    its total busy time.  A victim that computed nothing in the baseline
    dies at its first operation instead.  The construction is a pure
    function of ``(count, p, busy_s_per_rank)``: the sweep is exactly
    reproducible and the failing points hash to stable cache keys.
    """
    pairs = []
    for i in range(count):
        rank = (7 * i + 3) % p
        busy = busy_s_per_rank[rank] if rank < len(busy_s_per_rank) else 0.0
        pairs.append((rank, round(busy * (0.25 + 0.5 * i / count), 9)))
    return tuple(pairs)


def dag_failures_sweep(
    runner: ExperimentRunner,
    *,
    n: int | None = None,
    n_sites: int = DAG_FAILURES_SWEEP_SITES,
    tile_size: int = DAG_FAILURES_SWEEP_TILE,
    placement: str = "block",
    priority: str = "critical-path",
    failure_counts: tuple[int, ...] | list[int] = DAG_FAILURES_COUNTS,
) -> list[dict[str, object]]:
    """Re-execution recovery cost versus the number of injected rank deaths.

    For every failure count a tiled Cholesky runs through the fault-tolerant
    DAG runtime under the deterministic schedule of
    :func:`failure_schedule_pairs`, and the row records the recovered
    makespan against the memoised failure-free baseline: absolute and
    relative overhead, recovery rounds, and the exactly-once re-execution
    accounting (tasks re-executed = lost-version closure ∩ already-done
    work; tasks executed additionally counts the never-started work the
    dead ranks abandoned).  The zero-failure row *is* the baseline, so the
    curve starts at zero overhead by construction.
    """
    p = runner.processes(n_sites)
    order = n if n is not None else DAG_FAILURES_SWEEP_N[0]
    base = runner.dag_cholesky_point(
        order, n_sites, tile_size=tile_size, placement=placement, priority=priority
    )
    rows: list[dict[str, object]] = []
    for count in failure_counts:
        if count >= p:
            raise ConfigurationError(
                f"{count} failures on a {p}-rank reservation leaves no survivor"
            )
        if count == 0:
            point, recovery = base, None
        else:
            pairs = failure_schedule_pairs(
                count, p, base.trace.busy_s_per_rank
            )
            point = runner.dag_cholesky_point(
                order,
                n_sites,
                tile_size=tile_size,
                placement=placement,
                priority=priority,
                failures=pairs,
            )
            recovery = point.recovery
            scheduled = sorted(r for r, _ in pairs)
            died = sorted((recovery or {}).get("dead_ranks", ()))
            if died != scheduled:
                # Artifact integrity: a row labelled "count failures" must
                # have simulated exactly those deaths, never silently fewer.
                raise SimulationError(
                    f"failure schedule only partially fired: scheduled ranks "
                    f"{scheduled}, died {died}"
                )
        rec = recovery or {}
        rows.append(
            {
                "algorithm": "DAG-Cholesky",
                "N": order,
                "P": p,
                "tile": tile_size,
                "placement": placement,
                "priority": priority,
                "failures": count,
                "dead ranks": " ".join(str(r) for r in rec.get("dead_ranks", ())) or "-",
                "makespan (s)": round(point.time_s, 4),
                "failure-free (s)": round(base.time_s, 4),
                "overhead (s)": round(rec.get("makespan_overhead_s", 0.0), 4),
                "overhead (%)": round(rec.get("makespan_overhead_pct", 0.0), 2),
                "recovery rounds": rec.get("rounds", 0),
                "tasks re-executed": rec.get("tasks_reexecuted", 0),
                "tasks executed in recovery": rec.get("tasks_executed", 0),
                "Gflop/s": round(point.gflops, 2),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Trace hot spots: where the waiting happened (streaming observability)
# ---------------------------------------------------------------------------

def trace_hotspots_report(
    runner: ExperimentRunner,
    *,
    m: int = DAG_SWEEP_M[0],
    n: int = DAG_SWEEP_N,
    n_sites: int = DAG_SWEEP_SITES,
    tile_size: int = DAG_SWEEP_TILE,
    panel_tree: str = "binary",
    placement: str = "block",
    priority: str = "critical-path",
    top_k: int = 8,
) -> list[dict[str, object]]:
    """Rank the top-K contention sites of a contended DAG-CAQR run.

    The streaming trace layer accumulates p2p wait seconds per
    ``(link class, source, dest)`` site online, in fixed memory, with no
    event retention — so this report works unchanged at 2048+ ranks.  Each
    row is one site, ordered by accumulated wait; "wait share" is its
    fraction of the run's total p2p wait, so the head of the table answers
    "which links do I fix first".  The sentinel pair ``source = dest = -1``
    is the bounded accumulator's overflow site (all sites past the cap).

    Works from warm cache entries too: the top-K sites are serialised with
    the cached point (unlike the full histogram/timeline snapshot, which
    needs a live run).
    """
    point = runner.dag_caqr_point(
        m, n, n_sites, tile_size=tile_size, panel_tree=panel_tree,
        placement=placement, priority=priority,
    )
    total_wait = sum(point.trace.comm_wait_s_per_rank)
    rows: list[dict[str, object]] = []
    for i, spot in enumerate(point.trace.hot_spots[:top_k], 1):
        rows.append(
            {
                "#": i,
                "M": m,
                "N": n,
                "tile": tile_size,
                "link": spot.link,
                "source": spot.source,
                "dest": spot.dest,
                "wait (s)": round(spot.wait_s, 6),
                "wait share": round(spot.wait_s / total_wait, 4)
                if total_wait > 0
                else 0.0,
                "messages": spot.messages,
                "MB": round(spot.nbytes / 1e6, 3),
            }
        )
    return rows
