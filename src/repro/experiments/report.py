"""Plain-text and CSV reporting of experiment results.

The original figures are line plots; the harness reproduces them as plain
text (one table per curve plus a crude ASCII sketch of each series) and as
CSV files so the data can be re-plotted with any tool.  Nothing here depends
on matplotlib: the environment is assumed to be headless and offline.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = ["ascii_table", "ascii_series", "write_csv", "format_points"]


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    rows = [[_fmt(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def ascii_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 12,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Very small ASCII scatter of several (x, y) series on a log-x axis.

    Good enough to eyeball the shape of a figure in the terminal; the exact
    values are in the accompanying tables/CSV.
    """
    import math

    points = [(x, y, label) for label, pts in series.items() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [math.log10(max(p[0], 1e-12)) for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = 0.0, max(ys) * 1.05 or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = {}
    for idx, (label, pts) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend[label] = marker
        for x, y in pts:
            lx = math.log10(max(x, 1e-12))
            col = 0 if x_max == x_min else int((lx - x_min) / (x_max - x_min) * (width - 1))
            row = 0 if y_max == y_min else int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = [f"{ylabel} (max {y_max:.1f})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width + f"> {xlabel} (log scale)")
    lines.append("legend: " + ", ".join(f"{m}={label}" for label, m in legend.items()))
    return "\n".join(lines)


def format_points(rows: Iterable[Mapping[str, object]]) -> str:
    """Render a list of result-row dictionaries as a text table."""
    rows = list(rows)
    if not rows:
        return "(no results)"
    headers = list(rows[0].keys())
    return ascii_table(headers, [[row.get(h, "") for h in headers] for row in rows])


def write_csv(path: str | Path, rows: Iterable[Mapping[str, object]]) -> Path:
    """Write result-row dictionaries to ``path`` and return the path."""
    rows = list(rows)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    headers = list(rows[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=headers)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path
