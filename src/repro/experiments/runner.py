"""Experiment runner: one entry point per measured point of the evaluation.

The runner owns the platform objects (one per site count), executes TSQR or
ScaLAPACK runs at paper scale (virtual payloads) and converts the outcome
into :class:`ExperimentPoint` records carrying everything the figures and
tables report: achieved Gflop/s, simulated time, message counts by link
class, and the configuration that produced them.

Results are memoised by configuration: Fig. 8 reuses the points of Figs. 4
and 5, and repeated benchmark invocations do not re-simulate identical runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.experiments.grid5000 import Grid5000Settings, grid5000_platform
from repro.gridsim.platform import Platform
from repro.gridsim.trace import TraceSummary
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.scalapack.driver import ScaLAPACKConfig, run_scalapack_qr
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr

__all__ = ["PointSpec", "ExperimentPoint", "ExperimentRunner"]


@dataclass(frozen=True)
class PointSpec:
    """One measured configuration (an x-value of one curve of one figure)."""

    algorithm: str  # "tsqr", "scalapack" or "caqr"
    m: int
    n: int
    n_sites: int
    domains_per_cluster: int | None = None
    tree_kind: str = "grid-hierarchical"
    want_q: bool = False
    tile_size: int | None = None  # CAQR only

    def __post_init__(self) -> None:
        if self.algorithm not in ("tsqr", "scalapack", "caqr"):
            raise ConfigurationError(f"unknown algorithm {self.algorithm!r}")
        if self.algorithm == "tsqr" and self.domains_per_cluster is None:
            raise ConfigurationError("TSQR points need a domains_per_cluster value")
        if self.algorithm == "caqr" and self.tile_size is None:
            raise ConfigurationError("CAQR points need a tile_size value")
        if self.algorithm != "caqr" and self.tile_size is not None:
            raise ConfigurationError("tile_size only applies to CAQR points")
        if self.algorithm == "caqr" and self.want_q:
            raise ConfigurationError(
                "the distributed CAQR computes R only (its Q stays implicit)"
            )


@dataclass(frozen=True)
class ExperimentPoint:
    """Result of simulating one :class:`PointSpec`."""

    spec: PointSpec
    gflops: float
    time_s: float
    trace: TraceSummary = field(compare=False, repr=False)

    @property
    def total_messages(self) -> int:
        """Total point-to-point messages of the run."""
        return self.trace.total_messages

    @property
    def inter_cluster_messages(self) -> int:
        """Messages that crossed a wide-area link."""
        return self.trace.inter_cluster_messages

    def as_row(self) -> dict[str, object]:
        """Flat dictionary used by CSV/ASCII reports."""
        return {
            "algorithm": self.spec.algorithm,
            "M": self.spec.m,
            "N": self.spec.n,
            "sites": self.spec.n_sites,
            "domains/cluster": self.spec.domains_per_cluster or "-",
            "Gflop/s": round(self.gflops, 2),
            "time (s)": round(self.time_s, 4),
            "messages": self.total_messages,
            "inter-cluster msgs": self.inter_cluster_messages,
        }


class ExperimentRunner:
    """Run and memoise evaluation points on the simulated Grid'5000 platform."""

    def __init__(self, settings: Grid5000Settings | None = None) -> None:
        self.settings = settings or Grid5000Settings()
        self._platforms: dict[int, Platform] = {}
        self._cache: dict[PointSpec, ExperimentPoint] = {}

    # --------------------------------------------------------------- set-up
    def platform(self, n_sites: int) -> Platform:
        """The (cached) 1-, 2- or 4-site reserved platform."""
        if n_sites not in self._platforms:
            self._platforms[n_sites] = grid5000_platform(n_sites, self.settings)
        return self._platforms[n_sites]

    def processes(self, n_sites: int) -> int:
        """Number of MPI processes of an ``n_sites`` experiment."""
        return self.platform(n_sites).n_processes

    def processes_per_cluster(self, n_sites: int) -> int:
        """Processes reserved on each cluster (64 in the paper's setup)."""
        return self.processes(n_sites) // n_sites

    # ----------------------------------------------------------------- runs
    def run_point(self, spec: PointSpec) -> ExperimentPoint:
        """Simulate (or fetch from cache) one configuration."""
        cached = self._cache.get(spec)
        if cached is not None:
            return cached
        platform = self.platform(spec.n_sites)
        if spec.algorithm == "scalapack":
            result = run_scalapack_qr(
                platform, ScaLAPACKConfig(m=spec.m, n=spec.n, want_q=spec.want_q)
            )
            point = ExperimentPoint(
                spec=spec, gflops=result.gflops, time_s=result.makespan_s, trace=result.trace
            )
        elif spec.algorithm == "caqr":
            result = run_parallel_caqr(
                platform,
                CAQRConfig(
                    m=spec.m,
                    n=spec.n,
                    tile_size=spec.tile_size,
                    panel_tree=spec.tree_kind,
                ),
            )
            point = ExperimentPoint(
                spec=spec, gflops=result.gflops, time_s=result.makespan_s, trace=result.trace
            )
        else:
            dpc = spec.domains_per_cluster
            per_cluster = self.processes_per_cluster(spec.n_sites)
            if dpc is None or dpc <= 0 or per_cluster % dpc != 0:
                raise ConfigurationError(
                    f"domains/cluster {dpc} must divide the {per_cluster} processes of a cluster"
                )
            config = TSQRConfig(
                m=spec.m,
                n=spec.n,
                n_domains=dpc * spec.n_sites,
                tree_kind=spec.tree_kind,
                want_q=spec.want_q,
            )
            result = run_parallel_tsqr(platform, config)
            point = ExperimentPoint(
                spec=spec, gflops=result.gflops, time_s=result.makespan_s, trace=result.trace
            )
        self._cache[spec] = point
        return point

    # ---------------------------------------------------------- conveniences
    def scalapack_point(self, m: int, n: int, n_sites: int, *, want_q: bool = False) -> ExperimentPoint:
        """ScaLAPACK baseline at one (M, N, sites) configuration."""
        return self.run_point(
            PointSpec(algorithm="scalapack", m=m, n=n, n_sites=n_sites, want_q=want_q)
        )

    def tsqr_point(
        self,
        m: int,
        n: int,
        n_sites: int,
        domains_per_cluster: int,
        *,
        tree_kind: str = "grid-hierarchical",
        want_q: bool = False,
    ) -> ExperimentPoint:
        """QCG-TSQR at one (M, N, sites, domains/cluster) configuration."""
        return self.run_point(
            PointSpec(
                algorithm="tsqr",
                m=m,
                n=n,
                n_sites=n_sites,
                domains_per_cluster=domains_per_cluster,
                tree_kind=tree_kind,
                want_q=want_q,
            )
        )

    def caqr_point(
        self,
        m: int,
        n: int,
        n_sites: int,
        *,
        tile_size: int = 64,
        panel_tree: str = "binary",
    ) -> ExperimentPoint:
        """Distributed CAQR at one (M, N, sites, tile, panel-tree) configuration."""
        return self.run_point(
            PointSpec(
                algorithm="caqr",
                m=m,
                n=n,
                n_sites=n_sites,
                tree_kind=panel_tree,
                tile_size=tile_size,
            )
        )

    def best_tsqr_point(
        self,
        m: int,
        n: int,
        n_sites: int,
        domain_candidates: tuple[int, ...] = (32, 64),
        *,
        want_q: bool = False,
    ) -> ExperimentPoint:
        """TSQR with the best-performing domains/cluster among the candidates.

        Mirrors the paper's Fig. 5/8 reporting ("the performance for the
        optimum number of domains").  The default candidates are the two
        optima the paper identifies (one domain per node, one per processor).
        """
        best: ExperimentPoint | None = None
        for dpc in domain_candidates:
            point = self.tsqr_point(m, n, n_sites, dpc, want_q=want_q)
            if best is None or point.gflops > best.gflops:
                best = point
        assert best is not None
        return best

    def best_over_sites(
        self,
        algorithm: str,
        m: int,
        n: int,
        sites: tuple[int, ...] = (1, 2, 4),
        *,
        domain_candidates: tuple[int, ...] = (32, 64),
        want_q: bool = False,
    ) -> ExperimentPoint:
        """Best configuration over site counts (the convex hull of Fig. 8)."""
        best: ExperimentPoint | None = None
        for s in sites:
            if algorithm == "scalapack":
                point = self.scalapack_point(m, n, s, want_q=want_q)
            else:
                point = self.best_tsqr_point(m, n, s, domain_candidates, want_q=want_q)
            if best is None or point.gflops > best.gflops:
                best = point
        assert best is not None
        return best
