"""Experiment runner: one entry point per measured point of the evaluation.

The runner owns the platform objects (one per site count), executes TSQR or
ScaLAPACK runs at paper scale (virtual payloads) and converts the outcome
into :class:`ExperimentPoint` records carrying everything the figures and
tables report: achieved Gflop/s, simulated time, message counts by link
class, and the configuration that produced them.

Results are memoised by configuration: Fig. 8 reuses the points of Figs. 4
and 5, and repeated benchmark invocations do not re-simulate identical runs.

**Parallel sweeps.**  Every evaluation point is an independent simulation,
so a figure sweep is embarrassingly parallel: constructing the runner with
``jobs=N`` makes :meth:`ExperimentRunner.prefetch` simulate pending points
in a pool of ``N`` worker processes (each with its own platform cache) and
fill the shared memo.  Results are keyed by :class:`PointSpec` and the
figure builders read them back in their own deterministic loop order, so a
parallel sweep produces byte-identical series to a serial one — asserted by
the jobs-equivalence tests.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # service imports the runner; the reverse stays lazy
    from repro.service.cache import ResultCache

from repro.dag.placement import PLACEMENT_POLICIES, PRIORITY_POLICIES
from repro.dag.runtime import (
    DAGCAQRConfig,
    DAGFactorizationConfig,
    run_dag_caqr,
    run_dag_factorization,
)
from repro.exceptions import ConfigurationError
from repro.experiments.grid5000 import Grid5000Settings, grid5000_platform
from repro.gridsim.failures import FailureSchedule
from repro.gridsim.platform import Platform
from repro.gridsim.trace import TraceSummary
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.scalapack.driver import ScaLAPACKConfig, run_scalapack_qr
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr

__all__ = ["PointSpec", "ExperimentPoint", "ExperimentRunner"]


@dataclass(frozen=True)
class PointSpec:
    """One measured configuration (an x-value of one curve of one figure)."""

    algorithm: str  # "tsqr", "scalapack", "caqr", "cholesky" or "lu"
    m: int
    n: int
    n_sites: int
    domains_per_cluster: int | None = None
    tree_kind: str = "grid-hierarchical"
    want_q: bool = False
    tile_size: int | None = None  # CAQR only
    #: CAQR execution runtime: the bulk-synchronous SPMD program ("spmd") or
    #: the task-DAG dataflow runtime ("dag").
    runtime: str = "spmd"
    placement: str | None = None  # DAG runtime only
    priority: str | None = None  # DAG runtime only
    #: Deterministic rank-death schedule as ``(rank, at_time)`` pairs; DAG
    #: runtime only (the SPMD programs have no recovery path).
    failures: tuple[tuple[int, float], ...] | None = None

    #: Algorithms executed as tile DAGs (they need a tile_size).
    _TILED = ("caqr", "cholesky", "lu")
    #: Algorithms that exist only on the DAG runtime.
    _DAG_ONLY = ("cholesky", "lu")

    def __post_init__(self) -> None:
        if self.algorithm not in ("tsqr", "scalapack", "caqr", "cholesky", "lu"):
            raise ConfigurationError(f"unknown algorithm {self.algorithm!r}")
        if self.algorithm == "tsqr" and self.domains_per_cluster is None:
            raise ConfigurationError("TSQR points need a domains_per_cluster value")
        if self.algorithm in self._TILED and self.tile_size is None:
            raise ConfigurationError(
                f"{self.algorithm} points need a tile_size value"
            )
        if self.algorithm not in self._TILED and self.tile_size is not None:
            raise ConfigurationError(
                "tile_size only applies to tiled (caqr/cholesky/lu) points"
            )
        if self.algorithm in self._TILED and self.want_q:
            raise ConfigurationError(
                "the tiled factorizations compute the factor only "
                "(their Q/L inverses stay implicit)"
            )
        if self.runtime not in ("spmd", "dag"):
            raise ConfigurationError(
                f"unknown runtime {self.runtime!r}; choose from ('spmd', 'dag')"
            )
        if self.runtime == "dag" and self.algorithm not in self._TILED:
            raise ConfigurationError(
                "the DAG runtime only executes tiled (caqr/cholesky/lu) points"
            )
        if self.algorithm in self._DAG_ONLY and self.runtime != "dag":
            raise ConfigurationError(
                f"tiled {self.algorithm} only exists on the DAG runtime; "
                "pass runtime='dag'"
            )
        if self.runtime != "dag" and (self.placement or self.priority):
            raise ConfigurationError(
                "placement/priority policies only apply to DAG-runtime points"
            )
        if self.placement is not None and self.placement not in PLACEMENT_POLICIES:
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; choose from {PLACEMENT_POLICIES}"
            )
        if self.priority is not None and self.priority not in PRIORITY_POLICIES:
            raise ConfigurationError(
                f"unknown priority {self.priority!r}; choose from {PRIORITY_POLICIES}"
            )
        if self.failures is not None and len(self.failures) == 0:
            # An empty schedule is the same simulation as no schedule; fold
            # them together so they share one cache key.
            object.__setattr__(self, "failures", None)
        if self.failures is not None:
            if self.runtime != "dag":
                raise ConfigurationError(
                    "failure injection needs the DAG runtime: an SPMD program's "
                    "communication structure is baked into its text, so a dead "
                    "rank leaves every peer stuck in a revoked collective with "
                    "no way to re-place the lost work; the task graph is what "
                    "makes recovery possible (pass runtime='dag')"
                )
            # Normalise eagerly so equal schedules hash equally in the memo.
            object.__setattr__(
                self,
                "failures",
                tuple(sorted((int(r), float(t)) for r, t in self.failures)),
            )
            for rank, at_time in self.failures:
                if rank < 0 or at_time < 0.0:
                    raise ConfigurationError(
                        f"failure ({rank}, {at_time}) must have a non-negative "
                        "rank and death time"
                    )


@dataclass(frozen=True)
class ExperimentPoint:
    """Result of simulating one :class:`PointSpec`."""

    spec: PointSpec
    gflops: float
    time_s: float
    trace: TraceSummary = field(compare=False, repr=False)
    #: Exact dependence-chain lower bound of the run (DAG-runtime points).
    critical_path_s: float | None = field(default=None, compare=False)
    #: JSON-safe :meth:`~repro.dag.recovery.RecoveryReport.as_dict` of the
    #: failure recovery, when the spec injected failures that actually fired.
    recovery: dict | None = field(default=None, compare=False, repr=False)

    @property
    def total_messages(self) -> int:
        """Total point-to-point messages of the run."""
        return self.trace.total_messages

    @property
    def inter_cluster_messages(self) -> int:
        """Messages that crossed a wide-area link."""
        return self.trace.inter_cluster_messages

    def as_row(self) -> dict[str, object]:
        """Flat dictionary used by CSV/ASCII reports."""
        return {
            "algorithm": self.spec.algorithm,
            "M": self.spec.m,
            "N": self.spec.n,
            "sites": self.spec.n_sites,
            "domains/cluster": self.spec.domains_per_cluster or "-",
            "Gflop/s": round(self.gflops, 2),
            "time (s)": round(self.time_s, 4),
            "messages": self.total_messages,
            "inter-cluster msgs": self.inter_cluster_messages,
        }


#: Per-worker-process runner of a parallel prefetch (set by the initializer).
_WORKER_RUNNER: "ExperimentRunner | None" = None


def _prefetch_init(settings: "Grid5000Settings") -> None:
    """Pool initializer: one serial runner (own platform cache) per worker."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = ExperimentRunner(settings)


def _prefetch_point(spec: "PointSpec") -> "ExperimentPoint":
    """Simulate one point in a prefetch worker process."""
    assert _WORKER_RUNNER is not None, "worker pool initializer did not run"
    return _WORKER_RUNNER.run_point(spec)


class ExperimentRunner:
    """Run and memoise evaluation points on the simulated Grid'5000 platform.

    ``jobs`` sets the number of worker processes used by :meth:`prefetch`
    (the figure builders prefetch their whole sweep before reading points);
    ``jobs=1`` (the default) keeps everything serial in-process.

    ``store`` plugs in a persistent :class:`~repro.service.cache.ResultCache`
    behind the in-process memo: every simulated point is written through to
    it, every lookup consults it before simulating, so repeated figure
    sweeps and service queries get cross-invocation cache hits.  The
    :attr:`simulations_run` counter counts *actual* simulations only (cache
    hits of either level never increment it) — the persistent-cache tests
    pin "second invocation simulates zero points" on it.
    """

    def __init__(
        self,
        settings: Grid5000Settings | None = None,
        *,
        jobs: int = 1,
        store: "ResultCache | None" = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.settings = settings or Grid5000Settings()
        self.jobs = jobs
        self.store = store
        self.simulations_run = 0
        self._platforms: dict[int, Platform] = {}
        self._cache: dict[PointSpec, ExperimentPoint] = {}

    # --------------------------------------------------------------- set-up
    def platform(self, n_sites: int) -> Platform:
        """The (cached) 1-, 2- or 4-site reserved platform."""
        if n_sites not in self._platforms:
            self._platforms[n_sites] = grid5000_platform(n_sites, self.settings)
        return self._platforms[n_sites]

    def processes(self, n_sites: int) -> int:
        """Number of MPI processes of an ``n_sites`` experiment."""
        return self.platform(n_sites).n_processes

    def processes_per_cluster(self, n_sites: int) -> int:
        """Processes reserved on each cluster (64 in the paper's setup)."""
        return self.processes(n_sites) // n_sites

    # -------------------------------------------------------------- the memo
    def memoised(self, spec: PointSpec) -> ExperimentPoint | None:
        """The in-process memo entry for ``spec``, if any (never simulates)."""
        return self._cache.get(spec)

    def remember(self, spec: PointSpec, point: ExperimentPoint) -> None:
        """Fill the in-process memo (used by prefetch and the service tier)."""
        self._cache[spec] = point

    # ----------------------------------------------------------------- runs
    @staticmethod
    def _failure_schedule(spec: PointSpec) -> FailureSchedule | None:
        """The spec's deterministic failure schedule, or None when unset."""
        if spec.failures is None:
            return None
        return FailureSchedule.from_pairs(spec.failures)

    def _baseline_makespan(self, spec: PointSpec) -> float | None:
        """Failure-free makespan for a failing spec's overhead accounting.

        Routed through :meth:`run_point` on the ``failures=None`` twin of the
        spec, so a whole failure sweep shares one memoised baseline instead
        of each point simulating its own."""
        if spec.failures is None:
            return None
        return self.run_point(replace(spec, failures=None)).time_s

    def run_point(self, spec: PointSpec) -> ExperimentPoint:
        """Simulate (or fetch from memo/persistent cache) one configuration."""
        cached = self._cache.get(spec)
        if cached is not None:
            return cached
        if self.store is not None:
            stored = self.store.get_spec(spec, self.settings)
            if stored is not None:
                self._cache[spec] = stored
                return stored
        platform = self.platform(spec.n_sites)
        if spec.algorithm == "scalapack":
            result = run_scalapack_qr(
                platform, ScaLAPACKConfig(m=spec.m, n=spec.n, want_q=spec.want_q)
            )
            point = ExperimentPoint(
                spec=spec, gflops=result.gflops, time_s=result.makespan_s, trace=result.trace
            )
        elif spec.algorithm in PointSpec._DAG_ONLY:
            dag_result = run_dag_factorization(
                platform,
                DAGFactorizationConfig(
                    m=spec.m,
                    n=spec.n,
                    tile_size=spec.tile_size,
                    placement=spec.placement or "block",
                    priority=spec.priority or "critical-path",
                    algorithm=spec.algorithm,
                ),
                failures=self._failure_schedule(spec),
                baseline_makespan_s=self._baseline_makespan(spec),
            )
            point = ExperimentPoint(
                spec=spec,
                gflops=dag_result.gflops,
                time_s=dag_result.makespan_s,
                trace=dag_result.trace,
                critical_path_s=dag_result.critical_path_s,
                recovery=dag_result.recovery.as_dict() if dag_result.recovery else None,
            )
        elif spec.algorithm == "caqr" and spec.runtime == "dag":
            dag_result = run_dag_caqr(
                platform,
                DAGCAQRConfig(
                    m=spec.m,
                    n=spec.n,
                    tile_size=spec.tile_size,
                    panel_tree=spec.tree_kind,
                    placement=spec.placement or "block",
                    priority=spec.priority or "critical-path",
                ),
                failures=self._failure_schedule(spec),
                baseline_makespan_s=self._baseline_makespan(spec),
            )
            point = ExperimentPoint(
                spec=spec,
                gflops=dag_result.gflops,
                time_s=dag_result.makespan_s,
                trace=dag_result.trace,
                critical_path_s=dag_result.critical_path_s,
                recovery=dag_result.recovery.as_dict() if dag_result.recovery else None,
            )
        elif spec.algorithm == "caqr":
            result = run_parallel_caqr(
                platform,
                CAQRConfig(
                    m=spec.m,
                    n=spec.n,
                    tile_size=spec.tile_size,
                    panel_tree=spec.tree_kind,
                ),
            )
            point = ExperimentPoint(
                spec=spec, gflops=result.gflops, time_s=result.makespan_s, trace=result.trace
            )
        else:
            dpc = spec.domains_per_cluster
            per_cluster = self.processes_per_cluster(spec.n_sites)
            if dpc is None or dpc <= 0 or per_cluster % dpc != 0:
                raise ConfigurationError(
                    f"domains/cluster {dpc} must divide the {per_cluster} processes of a cluster"
                )
            config = TSQRConfig(
                m=spec.m,
                n=spec.n,
                n_domains=dpc * spec.n_sites,
                tree_kind=spec.tree_kind,
                want_q=spec.want_q,
            )
            result = run_parallel_tsqr(platform, config)
            point = ExperimentPoint(
                spec=spec, gflops=result.gflops, time_s=result.makespan_s, trace=result.trace
            )
        self.simulations_run += 1
        self._cache[spec] = point
        if self.store is not None:
            self.store.put_spec(spec, point, self.settings)
        return point

    def prefetch(self, specs: Iterable[PointSpec]) -> None:
        """Simulate every pending spec, in parallel when ``jobs > 1``.

        Duplicate and already-cached specs are skipped; with ``jobs=1`` (or
        fewer than two pending points) this is a no-op and the points are
        simulated lazily by :meth:`run_point` as before.  The filled cache is
        what makes the subsequent serial reads deterministic: result order is
        fixed by the caller's loop, never by worker completion order.
        """
        pending = [s for s in dict.fromkeys(specs) if s not in self._cache]
        if self.store is not None:
            # Warm store entries are pulled into the memo here, so workers
            # only ever fork for points that genuinely need simulating.
            cold = []
            for spec in pending:
                stored = self.store.get_spec(spec, self.settings)
                if stored is None:
                    cold.append(spec)
                else:
                    self._cache[spec] = stored
            pending = cold
        if self.jobs <= 1 or len(pending) < 2:
            return
        # fork keeps worker start-up cheap (no re-import of numpy); the rank
        # worker pool of the parent is reset in the child by the executor's
        # at-fork hook, so inherited pool bookkeeping cannot leak.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        with ctx.Pool(
            processes=min(self.jobs, len(pending)),
            initializer=_prefetch_init,
            initargs=(self.settings,),
        ) as pool:
            for spec, point in zip(pending, pool.map(_prefetch_point, pending)):
                self.simulations_run += 1
                self._cache[spec] = point
                if self.store is not None:
                    self.store.put_spec(spec, point, self.settings)

    # ------------------------------------------------------------ spec sweeps
    def tsqr_specs(
        self,
        m_values: Sequence[int],
        n: int,
        sites: Sequence[int],
        domain_counts: Sequence[int],
        *,
        tree_kind: str = "grid-hierarchical",
        want_q: bool = False,
    ) -> list[PointSpec]:
        """Cartesian TSQR sweep (every m x site x domains-per-cluster point)."""
        return [
            PointSpec(
                algorithm="tsqr",
                m=m,
                n=n,
                n_sites=s,
                domains_per_cluster=dpc,
                tree_kind=tree_kind,
                want_q=want_q,
            )
            for m in m_values
            for s in sites
            for dpc in domain_counts
        ]

    def scalapack_specs(
        self,
        m_values: Sequence[int],
        n: int,
        sites: Sequence[int],
        *,
        want_q: bool = False,
    ) -> list[PointSpec]:
        """Cartesian ScaLAPACK sweep (every m x site point)."""
        return [
            PointSpec(algorithm="scalapack", m=m, n=n, n_sites=s, want_q=want_q)
            for m in m_values
            for s in sites
        ]

    # ---------------------------------------------------------- conveniences
    def scalapack_point(self, m: int, n: int, n_sites: int, *, want_q: bool = False) -> ExperimentPoint:
        """ScaLAPACK baseline at one (M, N, sites) configuration."""
        return self.run_point(
            PointSpec(algorithm="scalapack", m=m, n=n, n_sites=n_sites, want_q=want_q)
        )

    def tsqr_point(
        self,
        m: int,
        n: int,
        n_sites: int,
        domains_per_cluster: int,
        *,
        tree_kind: str = "grid-hierarchical",
        want_q: bool = False,
    ) -> ExperimentPoint:
        """QCG-TSQR at one (M, N, sites, domains/cluster) configuration."""
        return self.run_point(
            PointSpec(
                algorithm="tsqr",
                m=m,
                n=n,
                n_sites=n_sites,
                domains_per_cluster=domains_per_cluster,
                tree_kind=tree_kind,
                want_q=want_q,
            )
        )

    def caqr_point(
        self,
        m: int,
        n: int,
        n_sites: int,
        *,
        tile_size: int = 64,
        panel_tree: str = "binary",
    ) -> ExperimentPoint:
        """Distributed CAQR at one (M, N, sites, tile, panel-tree) configuration."""
        return self.run_point(
            PointSpec(
                algorithm="caqr",
                m=m,
                n=n,
                n_sites=n_sites,
                tree_kind=panel_tree,
                tile_size=tile_size,
            )
        )

    def dag_caqr_point(
        self,
        m: int,
        n: int,
        n_sites: int,
        *,
        tile_size: int = 64,
        panel_tree: str = "binary",
        placement: str = "block",
        priority: str = "critical-path",
        failures: tuple[tuple[int, float], ...] | None = None,
    ) -> ExperimentPoint:
        """DAG-runtime CAQR at one (M, N, sites, tile, placement, priority) point."""
        return self.run_point(
            PointSpec(
                algorithm="caqr",
                m=m,
                n=n,
                n_sites=n_sites,
                tree_kind=panel_tree,
                tile_size=tile_size,
                runtime="dag",
                placement=placement,
                priority=priority,
                failures=failures,
            )
        )

    def dag_cholesky_point(
        self,
        n: int,
        n_sites: int,
        *,
        tile_size: int = 64,
        placement: str = "block",
        priority: str = "critical-path",
        failures: tuple[tuple[int, float], ...] | None = None,
    ) -> ExperimentPoint:
        """DAG-runtime tiled Cholesky at one (N, sites, tile, policies) point."""
        return self.run_point(
            PointSpec(
                algorithm="cholesky",
                m=n,
                n=n,
                n_sites=n_sites,
                tile_size=tile_size,
                runtime="dag",
                placement=placement,
                priority=priority,
                failures=failures,
            )
        )

    def dag_lu_point(
        self,
        m: int,
        n: int,
        n_sites: int,
        *,
        tile_size: int = 64,
        placement: str = "block",
        priority: str = "critical-path",
    ) -> ExperimentPoint:
        """DAG-runtime tiled LU (no pivoting) at one (M, N, sites, ...) point."""
        return self.run_point(
            PointSpec(
                algorithm="lu",
                m=m,
                n=n,
                n_sites=n_sites,
                tile_size=tile_size,
                runtime="dag",
                placement=placement,
                priority=priority,
            )
        )

    def best_tsqr_point(
        self,
        m: int,
        n: int,
        n_sites: int,
        domain_candidates: tuple[int, ...] = (32, 64),
        *,
        want_q: bool = False,
    ) -> ExperimentPoint:
        """TSQR with the best-performing domains/cluster among the candidates.

        Mirrors the paper's Fig. 5/8 reporting ("the performance for the
        optimum number of domains").  The default candidates are the two
        optima the paper identifies (one domain per node, one per processor).
        """
        best: ExperimentPoint | None = None
        for dpc in domain_candidates:
            point = self.tsqr_point(m, n, n_sites, dpc, want_q=want_q)
            if best is None or point.gflops > best.gflops:
                best = point
        assert best is not None
        return best

    def best_over_sites(
        self,
        algorithm: str,
        m: int,
        n: int,
        sites: tuple[int, ...] = (1, 2, 4),
        *,
        domain_candidates: tuple[int, ...] = (32, 64),
        want_q: bool = False,
    ) -> ExperimentPoint:
        """Best configuration over site counts (the convex hull of Fig. 8)."""
        best: ExperimentPoint | None = None
        for s in sites:
            if algorithm == "scalapack":
                point = self.scalapack_point(m, n, s, want_q=want_q)
            else:
                point = self.best_tsqr_point(m, n, s, domain_candidates, want_q=want_q)
            if best is None or point.gflops > best.gflops:
                best = point
        assert best is not None
        return best
