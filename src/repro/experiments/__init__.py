"""Experiment harness: the paper's evaluation (§V) end to end.

* :mod:`grid5000`  — the simulated Grid'5000 platform (machine + network +
  reservation + calibrated kernel rates);
* :mod:`workloads` — the matrix-shape and domain-count sweeps of the figures;
* :mod:`runner`    — cached execution of individual evaluation points;
* :mod:`figures`   — regeneration of Figs. 3-8 and Tables I-II;
* :mod:`paper_data`— approximate published values for shape comparison;
* :mod:`report`    — text/CSV rendering of the results.
"""

from repro.experiments.figures import (
    FigureData,
    FigureSeries,
    caqr_sweep,
    dag_caqr_sweep,
    figure3_network,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
    table2,
    table2_sweep,
)
from repro.experiments.grid5000 import (
    CLUSTER_NAMES,
    Grid5000Settings,
    grid5000_grid,
    grid5000_kernel_model,
    grid5000_network,
    grid5000_platform,
    site_subsets,
)
from repro.experiments.paper_data import (
    PAPER_FIG4_GFLOPS,
    PAPER_FIG5_GFLOPS,
    PAPER_QUALITATIVE_CLAIMS,
    paper_reference,
)
from repro.experiments.report import ascii_series, ascii_table, format_points, write_csv
from repro.experiments.runner import ExperimentPoint, ExperimentRunner, PointSpec
from repro.experiments.workloads import (
    CAQR_PANEL_TREES,
    CAQR_SWEEP_M,
    CAQR_SWEEP_M_FULL,
    CAQR_SWEEP_N,
    CAQR_SWEEP_SITES,
    CAQR_SWEEP_TILE,
    DAG_SWEEP_M,
    DAG_SWEEP_N,
    DAG_SWEEP_PRIORITIES,
    DAG_SWEEP_SITES,
    DAG_SWEEP_TILE,
    DOMAIN_COUNTS_PER_CLUSTER,
    PAPER_N_VALUES,
    TABLE2_DOMAINS_PER_CLUSTER,
    TABLE2_M,
    TABLE2_N,
    TABLE2_SITES,
    figure67_m_values,
    generate_matrix,
    paper_m_values,
    reduced_m_values,
)

__all__ = [
    "FigureData",
    "FigureSeries",
    "figure3_network",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "table1",
    "table2",
    "table2_sweep",
    "caqr_sweep",
    "dag_caqr_sweep",
    "CLUSTER_NAMES",
    "Grid5000Settings",
    "grid5000_grid",
    "grid5000_kernel_model",
    "grid5000_network",
    "grid5000_platform",
    "site_subsets",
    "PAPER_FIG4_GFLOPS",
    "PAPER_FIG5_GFLOPS",
    "PAPER_QUALITATIVE_CLAIMS",
    "paper_reference",
    "ascii_series",
    "ascii_table",
    "format_points",
    "write_csv",
    "ExperimentPoint",
    "ExperimentRunner",
    "PointSpec",
    "CAQR_PANEL_TREES",
    "CAQR_SWEEP_M",
    "CAQR_SWEEP_M_FULL",
    "CAQR_SWEEP_N",
    "CAQR_SWEEP_SITES",
    "CAQR_SWEEP_TILE",
    "DAG_SWEEP_M",
    "DAG_SWEEP_N",
    "DAG_SWEEP_PRIORITIES",
    "DAG_SWEEP_SITES",
    "DAG_SWEEP_TILE",
    "DOMAIN_COUNTS_PER_CLUSTER",
    "PAPER_N_VALUES",
    "TABLE2_DOMAINS_PER_CLUSTER",
    "TABLE2_M",
    "TABLE2_N",
    "TABLE2_SITES",
    "figure67_m_values",
    "generate_matrix",
    "paper_m_values",
    "reduced_m_values",
]
