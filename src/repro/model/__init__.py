"""Performance model of paper §IV: cost tables, Eq. (1) predictor, properties."""

from repro.model.costs import (
    CostBreakdown,
    caqr_costs,
    cost_table,
    dag_caqr_costs,
    dag_cholesky_costs,
    dag_lu_costs,
    scalapack_costs,
    tsqr_costs,
)
from repro.model.predictor import (
    MachineParameters,
    Prediction,
    crossover_n,
    predict,
    predict_caqr,
    predict_dag_caqr,
    predict_pair,
)
from repro.model.properties import (
    PropertyCheck,
    check_monotone_increase,
    check_property1_q_costs_double,
    check_property2_bounded_by_domain_rate,
    check_property5_midrange_advantage,
)

__all__ = [
    "CostBreakdown",
    "caqr_costs",
    "cost_table",
    "dag_caqr_costs",
    "dag_cholesky_costs",
    "dag_lu_costs",
    "scalapack_costs",
    "tsqr_costs",
    "MachineParameters",
    "Prediction",
    "crossover_n",
    "predict",
    "predict_caqr",
    "predict_dag_caqr",
    "predict_pair",
    "PropertyCheck",
    "check_monotone_increase",
    "check_property1_q_costs_double",
    "check_property2_bounded_by_domain_rate",
    "check_property5_midrange_advantage",
]
