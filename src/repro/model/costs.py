"""Analytic communication/computation costs (paper Tables I and II).

For an ``M x N`` tall-and-skinny matrix distributed over ``P`` domains and a
binary reduction tree of depth ``log2(P)``, the paper's model counts, on the
critical path:

==================  =======================  ==============================
quantity            ScaLAPACK QR2            TSQR
==================  =======================  ==============================
R only
  # messages        ``2 N log2 P``           ``log2 P``
  volume (doubles)  ``log2(P) N^2 / 2``      ``log2(P) N^2 / 2``
  # flops           ``(2MN^2 - 2/3 N^3)/P``  ``... + 2/3 log2(P) N^3``
Q and R
  # messages        ``4 N log2 P``           ``2 log2 P``
  volume (doubles)  ``2 log2(P) N^2 / 2``    ``2 log2(P) N^2 / 2``
  # flops           ``(4MN^2 - 4/3 N^3)/P``  ``... + 4/3 log2(P) N^3``
==================  =======================  ==============================

These are exposed as :class:`CostBreakdown` objects so the predictor
(:mod:`repro.model.predictor`) and the Table I/II validation benchmarks can
consume them uniformly.  :func:`caqr_costs` extends the accounting to the
general-matrix CAQR of §VI: total messages and volume of the per-panel TSQR
reductions plus the maximum per-rank flops of the structured tiled kernels,
matching the counts the simulated program charges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.tsqr.trees import tree_for
from repro.util.partition import block_ranges, tile_ranges
from repro.virtual.flops import (
    caqr_combine_flops,
    caqr_down_message_doubles,
    caqr_panel_leaf_flops,
    caqr_up_message_doubles,
)

__all__ = [
    "CostBreakdown",
    "scalapack_costs",
    "tsqr_costs",
    "caqr_costs",
    "dag_caqr_costs",
    "dag_cholesky_costs",
    "dag_lu_costs",
    "cost_table",
]


@dataclass(frozen=True)
class CostBreakdown:
    """Critical-path communication and computation counts of one algorithm."""

    algorithm: str
    m: int
    n: int
    p: int
    want_q: bool
    messages: float
    volume_doubles: float
    flops: float

    @property
    def volume_bytes(self) -> float:
        """Volume of data exchanged, in bytes (double precision)."""
        return self.volume_doubles * 8.0

    def as_row(self) -> dict[str, float | str]:
        """Row representation used by the report tables."""
        return {
            "algorithm": self.algorithm,
            "M": self.m,
            "N": self.n,
            "P": self.p,
            "Q requested": self.want_q,
            "# msg": self.messages,
            "volume (doubles)": self.volume_doubles,
            "# flops": self.flops,
        }


def _validate(m: int, n: int, p: int) -> float:
    if m <= 0 or n <= 0:
        raise ConfigurationError(f"matrix dimensions must be positive, got {m} x {n}")
    if p <= 0:
        raise ConfigurationError(f"domain count must be positive, got {p}")
    return math.log2(p) if p > 1 else 0.0


def scalapack_costs(m: int, n: int, p: int, *, want_q: bool = False) -> CostBreakdown:
    """Paper Table I/II row for ScaLAPACK QR2 on ``p`` processes."""
    log_p = _validate(m, n, p)
    messages = 2.0 * n * log_p
    volume = log_p * n * n / 2.0
    flops = (2.0 * m * n * n - (2.0 / 3.0) * n**3) / p
    if want_q:
        messages *= 2.0
        volume *= 2.0
        flops *= 2.0
    return CostBreakdown(
        algorithm="ScaLAPACK QR2",
        m=m,
        n=n,
        p=p,
        want_q=want_q,
        messages=messages,
        volume_doubles=volume,
        flops=flops,
    )


def tsqr_costs(m: int, n: int, p: int, *, want_q: bool = False) -> CostBreakdown:
    """Paper Table I/II row for TSQR on ``p`` domains."""
    log_p = _validate(m, n, p)
    messages = log_p
    volume = log_p * n * n / 2.0
    flops = (2.0 * m * n * n - (2.0 / 3.0) * n**3) / p + (2.0 / 3.0) * log_p * n**3
    if want_q:
        messages *= 2.0
        volume *= 2.0
        flops *= 2.0
    return CostBreakdown(
        algorithm="TSQR",
        m=m,
        n=n,
        p=p,
        want_q=want_q,
        messages=messages,
        volume_doubles=volume,
        flops=flops,
    )


def caqr_costs(
    m: int,
    n: int,
    p: int,
    *,
    tile_size: int = 64,
    panel_tree: str = "binary",
    clusters: Sequence[str] | None = None,
) -> CostBreakdown:
    """CAQR counts for a general ``m x n`` matrix over ``p`` ranks (paper §II/§VI).

    The accounting opens the paper's Table I formulas for the general-matrix
    follow-up: tile rows are block-distributed, every panel is one TSQR
    reduction over the ranks owning tile rows at or below the diagonal, and
    each tree edge carries the panel triangle plus the child's trailing tile
    row up and the updated trailing row down.  The returned quantities use
    the conventions of the CAQR sweep artefact:

    * ``messages`` — *total* point-to-point messages of the run (two per
      tree edge per panel while trailing columns remain, one on the final
      panel);
    * ``volume_doubles`` — total doubles exchanged: per up message the
      ``N^2/2``-style half triangle ``w(w+1)/2`` of the panel width ``w``
      plus the dense trailing row, per down message the trailing row alone;
    * ``flops`` — the maximum per-rank count, from the structured tiled-QR
      kernel formulas of :mod:`repro.virtual.flops` (``geqrt`` + ``unmqr``
      leaf work, ``tsqrt`` + ``tsmqr`` combines charged to the parent).

    ``clusters`` names the cluster hosting each rank (defaults to a single
    cluster), which the ``grid-hierarchical`` panel tree uses exactly like
    the simulated program does; the counts therefore match the measured
    traces of :func:`repro.programs.caqr.run_parallel_caqr` — the CAQR sweep
    benchmark asserts agreement within 10%.
    """
    _validate(m, n, p)
    if tile_size <= 0:
        raise ConfigurationError(f"tile size must be positive, got {tile_size}")
    cluster_names = list(clusters) if clusters is not None else ["local"] * p
    if len(cluster_names) != p:
        raise ConfigurationError(
            f"{len(cluster_names)} cluster names for {p} ranks"
        )
    row_ranges = tile_ranges(m, tile_size)
    col_ranges = tile_ranges(n, tile_size)
    mt, nt = len(row_ranges), len(col_ranges)
    owners = block_ranges(mt, p)

    def height(i: int) -> int:
        return row_ranges[i][1] - row_ranges[i][0]

    messages = 0.0
    volume = 0.0
    per_rank_flops = [0.0] * p
    for k in range(min(mt, nt)):
        wk = col_ranges[k][1] - col_ranges[k][0]
        trail_cols = n - col_ranges[k][1]
        participants = [
            r for r in range(p) if owners[r][1] > k and owners[r][1] > owners[r][0]
        ]
        # Leaf factorization and local flat reduction of every rank, summed
        # from the same shared helpers the simulated program charges with
        # (virtual/flops.py), so the two accountings cannot drift apart.
        for r in participants:
            t0, t1 = owners[r]
            i_top = max(t0, k)
            per_rank_flops[r] += caqr_panel_leaf_flops(
                [height(i) for i in range(i_top, t1)], wk, trail_cols
            )
            for i in range(i_top + 1, t1):
                per_rank_flops[r] += caqr_combine_flops(height(i), wk, trail_cols)
        # Cross-rank reduction along the same tree the program builds.
        tree = tree_for(
            panel_tree, len(participants), [cluster_names[r] for r in participants]
        )
        for child_pos, parent_pos in tree.edges():
            child = participants[child_pos]
            parent = participants[parent_pos]
            h_child = height(max(owners[child][0], k))
            per_rank_flops[parent] += caqr_combine_flops(h_child, wk, trail_cols)
            messages += 1.0
            volume += caqr_up_message_doubles(wk, h_child, trail_cols)
            if trail_cols:
                messages += 1.0
                volume += caqr_down_message_doubles(h_child, trail_cols)
    return CostBreakdown(
        algorithm="CAQR",
        m=m,
        n=n,
        p=p,
        want_q=False,
        messages=messages,
        volume_doubles=volume,
        flops=max(per_rank_flops),
    )


def dag_caqr_costs(
    m: int,
    n: int,
    p: int,
    *,
    tile_size: int = 64,
    panel_tree: str = "binary",
    placement: str = "block",
    clusters: Sequence[str] | None = None,
) -> CostBreakdown:
    """Counts of a *dataflow* CAQR execution, joining the Eq. (1) predictor.

    Unlike the bulk-synchronous :func:`caqr_costs`, the flop term here is the
    **critical-path** count — the longest flop-weighted dependence chain of
    the task graph — because a DAG execution charges only dependent work
    sequentially; everything else overlaps.  Messages and volume are the
    exact per-(value, consumer-rank) counts of the runtime's communication
    plan under the given placement policy, so measured traces match them
    identically (asserted by the DAG tests).
    """
    _validate(m, n, p)
    # Imported here, not at module level: repro.dag builds on the kernels and
    # partition layers this module also serves, and the model must stay
    # importable without pulling the whole runtime in.
    from repro.dag.graph import cached_tiled_qr_graph

    cluster_names = tuple(clusters) if clusters is not None else tuple(["local"] * p)
    if len(cluster_names) != p:
        raise ConfigurationError(f"{len(cluster_names)} cluster names for {p} ranks")
    graph = cached_tiled_qr_graph(m, n, tile_size, p, panel_tree, cluster_names)
    return _graph_costs("DAG-CAQR", graph, m, n, p, placement)


def _graph_costs(
    display: str, graph, m: int, n: int, p: int, placement: str
) -> CostBreakdown:
    """Critical-path flops + exact message/volume counts of a task graph."""
    from repro.dag.analysis import communication_counts, flop_critical_path
    from repro.dag.placement import place_tasks

    messages, nbytes = communication_counts(graph, place_tasks(graph, placement, p))
    return CostBreakdown(
        algorithm=display,
        m=m,
        n=n,
        p=p,
        want_q=False,
        messages=float(messages),
        volume_doubles=nbytes / 8.0,
        flops=flop_critical_path(graph),
    )


def dag_cholesky_costs(
    n: int,
    p: int,
    *,
    tile_size: int = 64,
    placement: str = "block",
) -> CostBreakdown:
    """Counts of a dataflow tiled-Cholesky execution (see :func:`dag_caqr_costs`).

    Same semantics as the CAQR predictor: the flop term is the longest
    flop-weighted dependence chain of the ``potrf``/``trsm``/``syrk``/
    ``gemm`` graph, messages and volume the exact per-(value, consumer-rank)
    counts of the runtime's communication plan under ``placement`` — so
    measured traces match them identically.
    """
    _validate(n, n, p)
    from repro.dag.graph import cached_graph

    graph = cached_graph("cholesky", n, n, tile_size)
    return _graph_costs("DAG-Cholesky", graph, n, n, p, placement)


def dag_lu_costs(
    m: int,
    n: int,
    p: int,
    *,
    tile_size: int = 64,
    placement: str = "block",
) -> CostBreakdown:
    """Counts of a dataflow tiled-LU (no pivoting) execution.

    Same semantics as :func:`dag_cholesky_costs`, for the ``getrf``/
    ``trsm_row``/``trsm_col``/``gemm_nn`` graph.
    """
    _validate(m, n, p)
    from repro.dag.graph import cached_graph

    graph = cached_graph("lu", m, n, tile_size)
    return _graph_costs("DAG-LU", graph, m, n, p, placement)


def cost_table(m: int, n: int, p: int, *, want_q: bool = False) -> list[CostBreakdown]:
    """Both rows of Table I (``want_q=False``) or Table II (``want_q=True``)."""
    return [scalapack_costs(m, n, p, want_q=want_q), tsqr_costs(m, n, p, want_q=want_q)]
