"""Analytic communication/computation costs (paper Tables I and II).

For an ``M x N`` tall-and-skinny matrix distributed over ``P`` domains and a
binary reduction tree of depth ``log2(P)``, the paper's model counts, on the
critical path:

==================  =======================  ==============================
quantity            ScaLAPACK QR2            TSQR
==================  =======================  ==============================
R only
  # messages        ``2 N log2 P``           ``log2 P``
  volume (doubles)  ``log2(P) N^2 / 2``      ``log2(P) N^2 / 2``
  # flops           ``(2MN^2 - 2/3 N^3)/P``  ``... + 2/3 log2(P) N^3``
Q and R
  # messages        ``4 N log2 P``           ``2 log2 P``
  volume (doubles)  ``2 log2(P) N^2 / 2``    ``2 log2(P) N^2 / 2``
  # flops           ``(4MN^2 - 4/3 N^3)/P``  ``... + 4/3 log2(P) N^3``
==================  =======================  ==============================

These are exposed as :class:`CostBreakdown` objects so the predictor
(:mod:`repro.model.predictor`) and the Table I/II validation benchmarks can
consume them uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = [
    "CostBreakdown",
    "scalapack_costs",
    "tsqr_costs",
    "cost_table",
]


@dataclass(frozen=True)
class CostBreakdown:
    """Critical-path communication and computation counts of one algorithm."""

    algorithm: str
    m: int
    n: int
    p: int
    want_q: bool
    messages: float
    volume_doubles: float
    flops: float

    @property
    def volume_bytes(self) -> float:
        """Volume of data exchanged, in bytes (double precision)."""
        return self.volume_doubles * 8.0

    def as_row(self) -> dict[str, float | str]:
        """Row representation used by the report tables."""
        return {
            "algorithm": self.algorithm,
            "M": self.m,
            "N": self.n,
            "P": self.p,
            "Q requested": self.want_q,
            "# msg": self.messages,
            "volume (doubles)": self.volume_doubles,
            "# flops": self.flops,
        }


def _validate(m: int, n: int, p: int) -> float:
    if m <= 0 or n <= 0:
        raise ConfigurationError(f"matrix dimensions must be positive, got {m} x {n}")
    if p <= 0:
        raise ConfigurationError(f"domain count must be positive, got {p}")
    return math.log2(p) if p > 1 else 0.0


def scalapack_costs(m: int, n: int, p: int, *, want_q: bool = False) -> CostBreakdown:
    """Paper Table I/II row for ScaLAPACK QR2 on ``p`` processes."""
    log_p = _validate(m, n, p)
    messages = 2.0 * n * log_p
    volume = log_p * n * n / 2.0
    flops = (2.0 * m * n * n - (2.0 / 3.0) * n**3) / p
    if want_q:
        messages *= 2.0
        volume *= 2.0
        flops *= 2.0
    return CostBreakdown(
        algorithm="ScaLAPACK QR2",
        m=m,
        n=n,
        p=p,
        want_q=want_q,
        messages=messages,
        volume_doubles=volume,
        flops=flops,
    )


def tsqr_costs(m: int, n: int, p: int, *, want_q: bool = False) -> CostBreakdown:
    """Paper Table I/II row for TSQR on ``p`` domains."""
    log_p = _validate(m, n, p)
    messages = log_p
    volume = log_p * n * n / 2.0
    flops = (2.0 * m * n * n - (2.0 / 3.0) * n**3) / p + (2.0 / 3.0) * log_p * n**3
    if want_q:
        messages *= 2.0
        volume *= 2.0
        flops *= 2.0
    return CostBreakdown(
        algorithm="TSQR",
        m=m,
        n=n,
        p=p,
        want_q=want_q,
        messages=messages,
        volume_doubles=volume,
        flops=flops,
    )


def cost_table(m: int, n: int, p: int, *, want_q: bool = False) -> list[CostBreakdown]:
    """Both rows of Table I (``want_q=False``) or Table II (``want_q=True``)."""
    return [scalapack_costs(m, n, p, want_q=want_q), tsqr_costs(m, n, p, want_q=want_q)]
