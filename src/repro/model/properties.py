"""The five qualitative properties of paper §IV, as checkable predicates.

Each function evaluates one of the paper's properties against either the
analytic model or a set of measured/simulated data points, returning a small
result object with the evidence.  The properties are:

1. computing Q and R costs about twice computing R only;
2. performance is bounded by the domanial QR rate;
3. performance increases with M;
4. performance increases with N;
5. TSQR beats ScaLAPACK for mid-range N, ScaLAPACK catches up for large N.

The test-suite and the benchmark harness use these helpers so the claims are
checked the same way everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.model.predictor import MachineParameters, predict_pair

__all__ = [
    "PropertyCheck",
    "check_property1_q_costs_double",
    "check_property2_bounded_by_domain_rate",
    "check_monotone_increase",
    "check_property5_midrange_advantage",
]


@dataclass(frozen=True)
class PropertyCheck:
    """Outcome of checking one property."""

    name: str
    holds: bool
    detail: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def check_property1_q_costs_double(
    time_r_only: float, time_q_and_r: float, *, tolerance: float = 0.35
) -> PropertyCheck:
    """Property 1: ``time(Q, R) ~= 2 x time(R)`` within ``tolerance`` (relative)."""
    if time_r_only <= 0:
        return PropertyCheck("property-1", False, "non-positive R-only time")
    ratio = time_q_and_r / time_r_only
    holds = abs(ratio - 2.0) <= 2.0 * tolerance
    return PropertyCheck(
        "property-1",
        holds,
        f"time(Q,R)/time(R) = {ratio:.2f} (expected ~2.0 +/- {2*tolerance:.1f})",
    )


def check_property2_bounded_by_domain_rate(
    achieved_gflops: float, practical_peak_gflops: float
) -> PropertyCheck:
    """Property 2: achieved rate never exceeds the domanial practical peak."""
    holds = achieved_gflops <= practical_peak_gflops * (1.0 + 1e-9)
    return PropertyCheck(
        "property-2",
        holds,
        f"achieved {achieved_gflops:.1f} Gflop/s vs practical peak "
        f"{practical_peak_gflops:.1f} Gflop/s",
    )


def check_monotone_increase(
    xs: Sequence[float],
    values: Sequence[float],
    *,
    name: str = "property-3/4",
    slack: float = 0.05,
) -> PropertyCheck:
    """Properties 3 and 4: values grow (within ``slack``) as ``xs`` grow.

    ``slack`` tolerates small non-monotonic wiggles (the paper's measured
    curves have them too): a step may decrease by at most ``slack`` relative
    to the running maximum.
    """
    if len(xs) != len(values) or len(xs) < 2:
        return PropertyCheck(name, False, "need at least two points")
    pairs = sorted(zip(xs, values))
    running_max = pairs[0][1]
    for x, v in pairs[1:]:
        if v < running_max * (1.0 - slack):
            return PropertyCheck(
                name, False, f"value dropped to {v:.2f} below running max {running_max:.2f} at x={x}"
            )
        running_max = max(running_max, v)
    return PropertyCheck(name, True, "values are non-decreasing (within slack)")


def check_property5_midrange_advantage(
    m: int,
    p: int,
    machine: MachineParameters,
    *,
    mid_n: Sequence[int] = (16, 64, 128),
    large_n_start: int = 256,
    large_n_stop: int = 8192,
) -> PropertyCheck:
    """Property 5: TSQR wins for mid-range N; its advantage shrinks as N grows.

    Uses the analytic model: checks that TSQR is faster for every ``mid_n``
    and that the relative advantage at ``large_n_stop`` is smaller than at
    ``large_n_start`` (the two curves close up, possibly crossing).
    """
    for n in mid_n:
        scal, ts = predict_pair(m, n, p, machine)
        if ts.time_s >= scal.time_s:
            return PropertyCheck(
                "property-5", False, f"TSQR not faster at mid-range N={n}"
            )
    scal_a, ts_a = predict_pair(m, large_n_start, p, machine)
    scal_b, ts_b = predict_pair(m, large_n_stop, p, machine)
    advantage_a = scal_a.time_s / ts_a.time_s
    advantage_b = scal_b.time_s / ts_b.time_s
    holds = advantage_b < advantage_a
    return PropertyCheck(
        "property-5",
        holds,
        f"TSQR advantage {advantage_a:.2f}x at N={large_n_start} vs "
        f"{advantage_b:.2f}x at N={large_n_stop}",
    )
