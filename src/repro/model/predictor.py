"""Performance prediction from the analytic cost model (paper Eq. (1)).

The paper approximates the factorization time on a homogeneous network as::

    time = beta * (# msg) + alpha * (vol. data exchanged) + gamma * (# FLOPs)

with ``alpha`` the inverse bandwidth, ``beta`` the latency and ``gamma`` the
inverse flop rate of a domain.  The predictor evaluates that formula for both
algorithms of Tables I/II, converts times into Gflop/s the same way the
paper's figures do (useful flops divided by wall time), and answers the two
qualitative questions the model is used for in §IV:

* Property 5: for which column counts ``N`` does TSQR beat ScaLAPACK, and
  where does the advantage fade?
* scalability: how does predicted performance evolve with ``M`` and with the
  number of domains / sites?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.model.costs import (
    CostBreakdown,
    caqr_costs,
    dag_caqr_costs,
    scalapack_costs,
    tsqr_costs,
)
from repro.util.units import gflops_rate
from repro.virtual.flops import qr_flops

__all__ = [
    "MachineParameters",
    "Prediction",
    "predict",
    "predict_pair",
    "predict_caqr",
    "predict_dag_caqr",
    "crossover_n",
]


@dataclass(frozen=True)
class MachineParameters:
    """The three constants of Eq. (1).

    Attributes
    ----------
    latency_s:
        ``beta`` — time per message, seconds.
    inverse_bandwidth_s_per_double:
        ``alpha`` — seconds per double-precision word exchanged.
    domain_gflops:
        ``1/gamma`` expressed as the sustained rate of one domain in Gflop/s.
    """

    latency_s: float
    inverse_bandwidth_s_per_double: float
    domain_gflops: float

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.inverse_bandwidth_s_per_double < 0:
            raise ConfigurationError("latency and inverse bandwidth must be non-negative")
        if self.domain_gflops <= 0:
            raise ConfigurationError("the domain rate must be positive")

    @classmethod
    def from_link(
        cls, latency_s: float, bandwidth_bytes_per_s: float, domain_gflops: float
    ) -> "MachineParameters":
        """Build the constants from a link description (bytes/s) and a rate."""
        return cls(
            latency_s=latency_s,
            inverse_bandwidth_s_per_double=8.0 / bandwidth_bytes_per_s,
            domain_gflops=domain_gflops,
        )


@dataclass(frozen=True)
class Prediction:
    """Predicted cost and achieved rate of one algorithm on one problem."""

    costs: CostBreakdown
    latency_time_s: float
    bandwidth_time_s: float
    compute_time_s: float

    @property
    def time_s(self) -> float:
        """Total predicted time (Eq. (1))."""
        return self.latency_time_s + self.bandwidth_time_s + self.compute_time_s

    @property
    def gflops(self) -> float:
        """Achieved rate using the paper's useful-flop convention."""
        useful = qr_flops(self.costs.m, self.costs.n)
        if self.costs.want_q:
            useful *= 2.0
        return gflops_rate(useful, self.time_s)


def predict(costs: CostBreakdown, machine: MachineParameters) -> Prediction:
    """Evaluate Eq. (1) for one cost breakdown."""
    latency_time = machine.latency_s * costs.messages
    bandwidth_time = machine.inverse_bandwidth_s_per_double * costs.volume_doubles
    compute_time = costs.flops / (machine.domain_gflops * 1e9)
    return Prediction(
        costs=costs,
        latency_time_s=latency_time,
        bandwidth_time_s=bandwidth_time,
        compute_time_s=compute_time,
    )


def predict_pair(
    m: int, n: int, p: int, machine: MachineParameters, *, want_q: bool = False
) -> tuple[Prediction, Prediction]:
    """Predictions for (ScaLAPACK QR2, TSQR) on the same problem and machine."""
    return (
        predict(scalapack_costs(m, n, p, want_q=want_q), machine),
        predict(tsqr_costs(m, n, p, want_q=want_q), machine),
    )


def predict_caqr(
    m: int,
    n: int,
    p: int,
    machine: MachineParameters,
    *,
    tile_size: int = 64,
    panel_tree: str = "binary",
) -> Prediction:
    """Eq. (1) applied to the general-matrix CAQR counts of §VI.

    This is the prediction the paper's closing discussion calls for: once
    ``N`` grows past :func:`crossover_n`, the extra ``2/3 log2(P) N^3``
    combine flops of plain TSQR dominate and one should switch to CAQR,
    whose panels are ``tile_size`` wide regardless of ``N``.
    """
    return predict(
        caqr_costs(m, n, p, tile_size=tile_size, panel_tree=panel_tree), machine
    )


def predict_dag_caqr(
    m: int,
    n: int,
    p: int,
    machine: MachineParameters,
    *,
    tile_size: int = 64,
    panel_tree: str = "binary",
    placement: str = "block",
) -> Prediction:
    """Eq. (1) applied to the dataflow CAQR counts of the task-DAG runtime.

    The flop term is the critical-path count (the only work a DAG execution
    serialises), so the prediction is a *lower envelope*: comparing it with
    :func:`predict_caqr` bounds how much a dataflow schedule can gain over
    the bulk-synchronous program on the same machine.
    """
    return predict(
        dag_caqr_costs(
            m, n, p, tile_size=tile_size, panel_tree=panel_tree, placement=placement
        ),
        machine,
    )


def crossover_n(
    m: int,
    p: int,
    machine: MachineParameters,
    *,
    n_candidates: range | None = None,
    want_q: bool = False,
) -> int | None:
    """Smallest ``N`` (if any) at which ScaLAPACK becomes faster than TSQR.

    Paper Property 5: TSQR wins for mid-range ``N`` but its extra
    ``2/3 log2(P) N^3`` flops eventually dominate, at which point one should
    switch to CAQR.  Returns ``None`` when no crossover occurs in the
    candidate range.
    """
    candidates = n_candidates if n_candidates is not None else range(1, 4097)
    for n in candidates:
        if n > m:
            break
        scal, ts = predict_pair(m, n, p, machine, want_q=want_q)
        if scal.time_s < ts.time_s:
            return n
    return None
