"""Distributed formation of the explicit orthogonal factor (``PDORGQR`` analogue).

Given the factored form produced by :func:`~repro.scalapack.pdgeqrf.pdgeqrf`
(reflectors distributed by block-rows), form the thin ``M x N`` orthogonal
factor, also distributed by block-rows.  The algorithm applies the panels'
block reflectors in reverse order to the identity; each panel application
needs two allreduces (the Gram matrix for ``T`` and ``V^T C``) and is
charged the structured flop count of LAPACK's ``ORGQR``, which equals the
factorization's — the computation doubling recorded in the paper's Table II
and Property 1.  (Because the application is *blocked* while the
factorization of a skinny panel is per-column, the measured message increase
is smaller than the paper's uniform 2x; the Table II artefacts document the
deviation.)

Besides the identity, the routine can start from an arbitrary ``N x N``
coefficient block ``C`` (distributed as the leading block-rows of an
``M x N`` matrix whose remaining rows are zero), returning ``Q @ C``.  This
is how QCG-TSQR's downward sweep finishes inside a multi-process domain: the
domain leader scatters its block of the sweep result and every member forms
its slice of the global orthogonal factor in one pass
(:func:`repro.tsqr.parallel.qcg_tsqr_program`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FactorizationError, ShapeError
from repro.gridsim.communicator import CommHandle
from repro.gridsim.executor import RankContext
from repro.scalapack.pdgeqr2 import larft_from_gram
from repro.scalapack.pdgeqrf import DistributedQR
from repro.virtual.flops import qr_flops
from repro.virtual.matrix import MatrixLike, VirtualMatrix, shape_of

__all__ = ["pdorgqr"]


def pdorgqr(
    ctx: RankContext,
    comm: CommHandle,
    factorization: DistributedQR,
    *,
    row_start: int,
    c_init: MatrixLike | None = None,
):
    """Form the local block-rows of the thin orthogonal factor (or ``Q @ C``).

    Returns a generator (drive with ``yield from``; each panel application
    performs two ``allreduce`` collectives).  Argument validation is *eager*
    — an empty factorization or a misshapen ``c_init`` raises here, before
    any communication is attempted.

    Parameters
    ----------
    factorization:
        The per-rank result of :func:`~repro.scalapack.pdgeqrf.pdgeqrf`.
    row_start:
        Global index of this rank's first row (used to initialise the local
        slice of the identity).
    c_init:
        Optional local slice of an ``N x N`` coefficient block ``C`` placed in
        the leading rows of the global initial matrix ``[C; 0]``: this rank
        contributes the rows of ``C`` falling inside
        ``[row_start, row_start + local_rows)`` (an empty slice when the rank
        owns no row below ``N``).  When given, the routine returns the local
        block-rows of ``Q @ C`` instead of ``Q`` — the finishing step of the
        TSQR downward sweep.  In virtual mode the slice is shape-only and
        the returned payload is virtual either way.

    Returns
    -------
    The calling rank's ``m_local x N`` slice of the result (a
    :class:`~repro.virtual.matrix.VirtualMatrix` in virtual mode).
    """
    m_loc = factorization.local_rows
    n = factorization.n
    if not factorization.panels:
        raise FactorizationError(
            "cannot form Q from an empty distributed factorization (no panels); "
            "run pdgeqrf first"
        )
    virtual = bool(factorization.panels[0].v_local is None)

    if c_init is not None:
        # Validate in virtual mode too: a bad scatter slice must fail the
        # paper-scale sweeps exactly like it fails the real-payload tests.
        # The slice must cover this rank's intersection with the coefficient
        # rows [0, n) exactly — no more, no fewer.
        rows, cols = shape_of(c_init)
        expected_rows = max(0, min(row_start + m_loc, n) - row_start)
        if cols != n or rows != expected_rows:
            raise ShapeError(
                f"c_init slice of shape ({rows}, {cols}) does not fit: this rank "
                f"owns rows [{row_start}, {row_start + m_loc}) of the domain, so "
                f"its slice of the coefficient block must be {expected_rows} x {n}"
            )

    if virtual:
        c = None
    else:
        c = np.zeros((m_loc, n))
        if c_init is not None:
            if rows:
                c[:rows, :] = np.asarray(c_init, dtype=np.float64)
        else:
            # Local slice of the m x n identity.
            for i in range(m_loc):
                g = row_start + i
                if g < n:
                    c[i, g] = 1.0

    return _apply_panels(ctx, comm, factorization, virtual, c, m_loc, n)


def _apply_panels(
    ctx: RankContext,
    comm: CommHandle,
    factorization: DistributedQR,
    virtual: bool,
    c: np.ndarray | None,
    m_loc: int,
    n: int,
):
    # Apply the block reflectors in reverse panel order: Q = H_1 ... H_k,
    # so Q @ C applies the *last* panel first.
    for panel in reversed(factorization.panels):
        width = panel.n
        if virtual:
            gram_local = np.zeros((width, width))
            w_local = np.zeros((width, n))
        else:
            v = panel.v_local
            gram_local = v.T @ v
            w_local = v.T @ c
        gram = yield from comm.allreduce(gram_local)
        w = yield from comm.allreduce(w_local)
        # LAPACK's (PD)ORGQR exploits the zero/identity structure of the
        # accumulated C so that forming the thin Q costs exactly as many
        # flops as the factorization itself (the doubling of paper Table II /
        # Property 1): charge each panel its width-proportional share of that
        # structured count rather than the dense application's.
        ctx.compute(qr_flops(m_loc, n) * (width / n), kernel="update", n=n)
        if not virtual:
            t = larft_from_gram(gram, panel.tau)
            c -= panel.v_local @ (t @ w)

    if virtual:
        return VirtualMatrix(m_loc, n)
    return c
