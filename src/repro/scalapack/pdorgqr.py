"""Distributed formation of the explicit orthogonal factor (``PDORGQR`` analogue).

Given the factored form produced by :func:`~repro.scalapack.pdgeqrf.pdgeqrf`
(reflectors distributed by block-rows), form the thin ``M x N`` orthogonal
factor, also distributed by block-rows.  The algorithm applies the panels'
block reflectors in reverse order to the identity; each panel application
needs two allreduces (the Gram matrix for ``T`` and ``V^T C``), so forming Q
roughly doubles both the message count and the flops of the factorization —
the communication/computation doubling recorded in the paper's Table II and
Property 1.
"""

from __future__ import annotations

import numpy as np

from repro.gridsim.communicator import CommHandle
from repro.gridsim.executor import RankContext
from repro.scalapack.pdgeqr2 import larft_from_gram
from repro.scalapack.pdgeqrf import DistributedQR
from repro.virtual.matrix import VirtualMatrix

__all__ = ["pdorgqr"]


def pdorgqr(
    ctx: RankContext,
    comm: CommHandle,
    factorization: DistributedQR,
    *,
    row_start: int,
) -> np.ndarray | VirtualMatrix:
    """Form the local block-rows of the thin orthogonal factor.

    Parameters
    ----------
    factorization:
        The per-rank result of :func:`~repro.scalapack.pdgeqrf.pdgeqrf`.
    row_start:
        Global index of this rank's first row (used to initialise the local
        slice of the identity).

    Returns
    -------
    The calling rank's ``m_local x N`` slice of Q (a
    :class:`~repro.virtual.matrix.VirtualMatrix` in virtual mode).
    """
    m_loc = factorization.local_rows
    n = factorization.n
    virtual = factorization.panels and factorization.panels[0].v_local is None

    if virtual:
        c = None
    else:
        # Local slice of the m x n identity.
        c = np.zeros((m_loc, n))
        for i in range(m_loc):
            g = row_start + i
            if g < n:
                c[i, g] = 1.0

    # Apply the block reflectors in reverse panel order: Q = H_1 ... H_k,
    # so Q @ C applies the *last* panel first.
    for panel in reversed(factorization.panels):
        width = panel.n
        if virtual:
            gram_local = np.zeros((width, width))
            w_local = np.zeros((width, n))
        else:
            v = panel.v_local
            gram_local = v.T @ v
            w_local = v.T @ c
        gram = comm.allreduce(gram_local)
        w = comm.allreduce(w_local)
        ctx.compute(1.0 * m_loc * width * width, kernel="update", n=n)
        ctx.compute(2.0 * m_loc * width * n, kernel="update", n=n)
        if not virtual:
            t = larft_from_gram(gram, panel.tau)
            c -= panel.v_local @ (t @ w)
        ctx.compute(2.0 * m_loc * width * n + 2.0 * width * width * n, kernel="update", n=n)

    if virtual:
        return VirtualMatrix(m_loc, n)
    return c
