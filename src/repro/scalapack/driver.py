"""SPMD driver for the ScaLAPACK-style QR baseline.

This is the baseline the paper compares against: the whole matrix is
distributed by block-rows over *all* processes of the allocation (no notion
of domains, no topology awareness — the collectives use the rank-ordered
binary tree of a generic MPI), and the factorization is the blocked
``PDGEQRF`` of :mod:`repro.scalapack.pdgeqrf`.

Two entry points are provided:

* :func:`scalapack_qr_program` — the per-rank SPMD program, usable directly
  under :class:`~repro.gridsim.executor.SPMDExecutor` or as the *domain
  factorization* inside QCG-TSQR (paper §III attributes each domain to a
  group of processes calling ScaLAPACK);
* :func:`run_scalapack_qr` — a harness wrapper that builds the executor, runs
  the program on a platform and converts the outcome into performance
  numbers (Gflop/s, message counts) for the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gridsim.executor import RankContext, SPMDExecutor, SimulationResult
from repro.gridsim.platform import Platform
from repro.gridsim.trace import TraceSummary
from repro.scalapack.descriptor import RowBlockDescriptor
from repro.scalapack.pdgeqrf import DEFAULT_NB, DEFAULT_NX, pdgeqrf
from repro.scalapack.pdorgqr import pdorgqr
from repro.util.units import gflops_rate
from repro.virtual.flops import qr_flops
from repro.virtual.matrix import VirtualMatrix

__all__ = ["ScaLAPACKConfig", "ScaLAPACKRankResult", "ScaLAPACKRunResult",
           "scalapack_qr_program", "run_scalapack_qr"]


@dataclass(frozen=True)
class ScaLAPACKConfig:
    """Configuration of one ScaLAPACK-style QR run.

    ``matrix`` supplies real data (numpy array of shape ``(m, n)``); when it
    is ``None`` the run is *virtual*: every rank works on a shape-only block
    of its share of an ``m x n`` matrix, which is how the paper-scale sweeps
    are executed.
    """

    m: int
    n: int
    nb: int = DEFAULT_NB
    nx: int = DEFAULT_NX
    want_q: bool = False
    matrix: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.m < self.n:
            raise ConfigurationError(
                f"the baseline targets tall matrices, got {self.m} x {self.n}"
            )
        if self.matrix is not None and self.matrix.shape != (self.m, self.n):
            raise ConfigurationError(
                f"matrix shape {self.matrix.shape} does not match ({self.m}, {self.n})"
            )

    @property
    def virtual(self) -> bool:
        """True when the run uses shape-only payloads."""
        return self.matrix is None

    def flop_count(self) -> float:
        """Useful flops credited to the run (the paper's Gflop/s denominator)."""
        base = qr_flops(self.m, self.n)
        return 2.0 * base if self.want_q else base


@dataclass
class ScaLAPACKRankResult:
    """Per-rank return value of the SPMD program."""

    rank: int
    local_rows: int
    r: np.ndarray | None
    q_local: np.ndarray | VirtualMatrix | None


def scalapack_qr_program(ctx: RankContext, config: ScaLAPACKConfig):
    """SPMD program (a generator): distributed blocked QR over the whole communicator."""
    comm = ctx.comm
    desc = RowBlockDescriptor(config.m, config.n, comm.size)
    start, stop = desc.row_range(comm.rank)
    local_rows = stop - start

    if config.virtual:
        a_local: np.ndarray | VirtualMatrix = VirtualMatrix(local_rows, config.n)
    else:
        a_local = np.array(config.matrix[start:stop, :], dtype=np.float64, copy=True)

    factorization = yield from pdgeqrf(ctx, comm, a_local, nb=config.nb, nx=config.nx)
    q_local: np.ndarray | VirtualMatrix | None = None
    if config.want_q:
        q_local = yield from pdorgqr(ctx, comm, factorization, row_start=start)
    return ScaLAPACKRankResult(
        rank=comm.rank, local_rows=local_rows, r=factorization.r, q_local=q_local
    )


@dataclass
class ScaLAPACKRunResult:
    """Harness-level outcome of one baseline run."""

    config: ScaLAPACKConfig
    r: np.ndarray | None
    q: np.ndarray | None
    makespan_s: float
    gflops: float
    trace: TraceSummary
    simulation: SimulationResult = field(repr=False)

    @property
    def time_s(self) -> float:
        """Simulated wall-clock time of the factorization."""
        return self.makespan_s


def run_scalapack_qr(
    platform: Platform,
    config: ScaLAPACKConfig,
    *,
    collective_tree: str = "binary",
    record_messages: bool = False,
    engine: str | None = None,
) -> ScaLAPACKRunResult:
    """Run the ScaLAPACK baseline on ``platform`` and summarise its performance.

    ``collective_tree`` defaults to the topology-oblivious binary tree — the
    point of the baseline; passing ``"hierarchical"`` gives the
    "topology-aware collectives" ablation.
    """
    executor = SPMDExecutor(
        platform,
        record_messages=record_messages,
        collective_tree=collective_tree,
        engine=engine,
    )
    sim = executor.run(scalapack_qr_program, config)
    rank0: ScaLAPACKRankResult = sim.results[0]
    q = None
    if config.want_q and not config.virtual:
        blocks = [res.q_local for res in sim.results]
        q = np.vstack(blocks)
    return ScaLAPACKRunResult(
        config=config,
        r=rank0.r,
        q=q,
        makespan_s=sim.makespan,
        gflops=gflops_rate(config.flop_count(), sim.makespan),
        trace=sim.trace,
        simulation=sim,
    )
