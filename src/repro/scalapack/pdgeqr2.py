"""Distributed unblocked panel QR (the ``PDGEQR2`` analogue).

The matrix is distributed by contiguous block-rows
(:class:`~repro.scalapack.descriptor.RowBlockDescriptor`); every column step
generates one Householder reflector spread over the process rows and requires
**two allreduce operations**:

1. one to assemble the column norm (and the pivot value) needed to build the
   reflector — the "normalisation" reduction of paper Fig. 1;
2. one to assemble ``v^T A_trailing`` for the rank-1 update of the trailing
   columns — the "update" reduction of paper Fig. 1 (skipped for the last
   column, exactly as in the figure's caption).

That is ``~2 N`` reductions for an ``M x N`` panel — the latency bottleneck
TSQR removes.  The routine supports both real payloads (numpy blocks updated
in place, exact numerics) and virtual payloads (shape-only blocks, cost
accounting only); the communication calls are identical in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DistributionError, ShapeError
from repro.gridsim.communicator import CommHandle
from repro.gridsim.executor import RankContext
from repro.virtual.matrix import MatrixLike, is_virtual, shape_of

__all__ = ["PanelFactorization", "pdgeqr2", "larft_from_gram"]


@dataclass
class PanelFactorization:
    """Per-rank outcome of a distributed panel factorization.

    ``v_local``/``tau`` describe this rank's slice of the Householder
    reflectors (``None`` in virtual mode); ``r`` holds the triangular factor
    of the factored window on the rank owning the diagonal block (rank 0 of
    the panel communicator) and is ``None`` elsewhere.
    """

    v_local: np.ndarray | None
    tau: np.ndarray | None
    r: np.ndarray | None
    local_rows: int
    n: int


def larft_from_gram(gram: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Build the compact-WY ``T`` factor from the reflectors' Gram matrix.

    ``gram = V^T V`` is all that is needed to form ``T`` when ``V`` is
    distributed by rows: ``T[:j, j] = -tau_j * T[:j, :j] @ gram[:j, j]``.
    The blocked distributed update therefore computes ``T`` redundantly on
    every rank after a single allreduce of the small Gram matrix.
    """
    gram = np.asarray(gram, dtype=np.float64)
    tau = np.asarray(tau, dtype=np.float64)
    k = tau.size
    if gram.shape != (k, k):
        raise ShapeError(f"gram has shape {gram.shape}, expected {(k, k)}")
    t = np.zeros((k, k))
    for j in range(k):
        if tau[j] == 0.0:
            continue
        t[j, j] = tau[j]
        if j > 0:
            t[:j, j] = -tau[j] * (t[:j, :j] @ gram[:j, j])
    return t


def pdgeqr2(
    ctx: RankContext,
    comm: CommHandle,
    a_local: MatrixLike,
    *,
    diag_local_row: int = 0,
    col_offset: int = 0,
    n_cols: int | None = None,
):
    """Distributed unblocked Householder QR of a block-row distributed panel.

    A generator (drive with ``yield from``; every column step performs two
    ``allreduce`` collectives).  Real mode updates ``a_local`` **in place**
    (the window's upper triangle becomes R, the sub-diagonal entries are
    zeroed); virtual mode performs the same communication calls and charges
    the same flops without touching data.

    Parameters
    ----------
    ctx:
        Rank context used to charge local compute to the virtual clock.
    comm:
        Communicator over the processes sharing the panel; its rank 0 must
        own the diagonal block (the first global rows).
    a_local:
        This rank's block-row slice: a *writable* numpy array or a
        :class:`~repro.virtual.matrix.VirtualMatrix`.
    diag_local_row:
        Local row (on rank 0) of the first diagonal entry of the window.
    col_offset, n_cols:
        Column window ``[col_offset, col_offset + n_cols)`` to factor;
        defaults to every remaining column.
    """
    rank = comm.rank
    m_loc, n_total = shape_of(a_local)
    if n_cols is None:
        n_cols = n_total - col_offset
    if n_cols <= 0:
        raise ShapeError(f"panel must have at least one column, got {n_cols}")
    virtual = is_virtual(a_local)

    if rank == 0 and (m_loc - diag_local_row) < n_cols:
        raise DistributionError(
            "rank 0 must own at least as many rows as the panel has columns "
            f"(has {m_loc - diag_local_row}, needs {n_cols}); the tall-and-skinny "
            "block-row layout requires M/P >= N"
        )

    a = None if virtual else np.asarray(a_local)
    v_local = None if virtual else np.zeros((m_loc, n_cols))
    tau = None if virtual else np.zeros(n_cols)

    for jj in range(n_cols):
        j = col_offset + jj
        trailing = n_cols - jj - 1
        cols = slice(j + 1, col_offset + n_cols)

        # ---------------- reduction 1: column norm + pivot value -----------
        if virtual:
            local = np.zeros(2)
        elif rank == 0:
            pivot_row = diag_local_row + jj
            tail = a[pivot_row + 1 :, j]
            local = np.array([float(tail @ tail), float(a[pivot_row, j])])
        else:
            tail = a[:, j]
            local = np.array([float(tail @ tail), 0.0])
        sigma_alpha = yield from comm.allreduce(local)
        # One pass over the local column to form/scale the reflector.
        ctx.compute(2.0 * m_loc, kernel="panel", n=n_cols)

        if not virtual:
            sigma, alpha = float(sigma_alpha[0]), float(sigma_alpha[1])
            if sigma == 0.0:
                tau_j, beta, scale = 0.0, alpha, 0.0
            else:
                norm_x = np.sqrt(alpha * alpha + sigma)
                beta = -np.copysign(norm_x, alpha) if alpha != 0.0 else -norm_x
                tau_j = (beta - alpha) / beta
                scale = 1.0 / (alpha - beta)
            tau[jj] = tau_j
            if rank == 0:
                pivot_row = diag_local_row + jj
                v_local[pivot_row, jj] = 1.0
                if scale != 0.0:
                    v_local[pivot_row + 1 :, jj] = a[pivot_row + 1 :, j] * scale
                a[pivot_row, j] = beta
                a[pivot_row + 1 :, j] = 0.0
            else:
                if scale != 0.0:
                    v_local[:, jj] = a[:, j] * scale
                a[:, j] = 0.0

        # ---------------- reduction 2: trailing-column update --------------
        if trailing > 0:
            if virtual:
                w_local = np.zeros(trailing)
            elif rank == 0:
                rows = slice(diag_local_row + jj, m_loc)
                w_local = a[rows, cols].T @ v_local[rows, jj]
            else:
                w_local = a[:, cols].T @ v_local[:, jj]
            w = yield from comm.allreduce(w_local)
            if not virtual and tau[jj] != 0.0:
                if rank == 0:
                    rows = slice(diag_local_row + jj, m_loc)
                    a[rows, cols] -= tau[jj] * np.outer(v_local[rows, jj], w)
                else:
                    a[:, cols] -= tau[jj] * np.outer(v_local[:, jj], w)
            # Matrix-vector product plus rank-1 update over the local rows.
            ctx.compute(4.0 * m_loc * trailing, kernel="panel", n=n_cols)

    r = None
    if not virtual and rank == 0:
        window = a[diag_local_row : diag_local_row + n_cols, col_offset : col_offset + n_cols]
        r = np.triu(np.array(window, copy=True))
    return PanelFactorization(v_local=v_local, tau=tau, r=r, local_rows=m_loc, n=n_cols)
