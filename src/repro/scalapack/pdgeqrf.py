"""Distributed blocked QR factorization (the ``PDGEQRF`` analogue).

``PDGEQRF`` factors panels of ``NB`` columns with the unblocked
:func:`~repro.scalapack.pdgeqr2.pdgeqr2` and applies the accumulated block
reflector to the trailing columns through the compact WY representation.
Following the ScaLAPACK defaults quoted in paper §II-B, blocking is only used
when there are at least ``NX`` columns left to update (``NB = 64``,
``NX = 128`` by default); a genuinely skinny panel is therefore factored by
``PDGEQR2`` alone, which is exactly the configuration whose communication
cost the paper analyses (2 reductions per column).

Per blocked panel the trailing update costs two additional allreduces: one
for the reflectors' Gram matrix (to build ``T`` redundantly) and one for
``V^T A_trailing``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.gridsim.communicator import CommHandle
from repro.gridsim.executor import RankContext
from repro.scalapack.pdgeqr2 import PanelFactorization, larft_from_gram, pdgeqr2
from repro.virtual.matrix import MatrixLike, is_virtual, shape_of

__all__ = ["DistributedQR", "pdgeqrf"]

#: ScaLAPACK default block size (paper §II-B).
DEFAULT_NB = 64
#: ScaLAPACK default crossover: use blocking only if more columns remain.
DEFAULT_NX = 128


@dataclass
class DistributedQR:
    """Per-rank outcome of a distributed blocked QR factorization.

    ``panels`` keeps one :class:`PanelFactorization` per panel (the local
    reflector slices needed to apply or form Q); ``r`` is the global ``N x N``
    triangular factor, present on rank 0 only (``None`` in virtual mode).
    """

    panels: list[PanelFactorization]
    r: np.ndarray | None
    local_rows: int
    n: int
    nb: int


def pdgeqrf(
    ctx: RankContext,
    comm: CommHandle,
    a_local: MatrixLike,
    *,
    nb: int = DEFAULT_NB,
    nx: int = DEFAULT_NX,
):
    """Blocked distributed Householder QR of a block-row distributed matrix.

    A generator (drive with ``yield from``): the panel factorizations and
    the trailing-update allreduces all suspend the calling rank.

    Parameters
    ----------
    ctx, comm, a_local:
        As in :func:`~repro.scalapack.pdgeqr2.pdgeqr2`; ``a_local`` is updated
        in place in real mode.
    nb:
        Panel width (ScaLAPACK ``NB``).
    nx:
        Crossover: when fewer than ``nx`` columns remain to be updated the
        factorization falls back to the unblocked algorithm.
    """
    if nb <= 0:
        raise ShapeError(f"nb must be positive, got {nb}")
    m_loc, n = shape_of(a_local)
    virtual = is_virtual(a_local)
    rank = comm.rank
    a = None if virtual else np.asarray(a_local)

    panels: list[PanelFactorization] = []
    j0 = 0
    while j0 < n:
        remaining = n - j0
        if remaining <= max(nx, nb):
            # Unblocked finish (covers the whole matrix when N <= NX).
            panel = yield from pdgeqr2(
                ctx, comm, a_local, diag_local_row=j0, col_offset=j0, n_cols=remaining
            )
            panels.append(panel)
            j0 = n
            break

        width = min(nb, remaining)
        panel = yield from pdgeqr2(
            ctx, comm, a_local, diag_local_row=j0, col_offset=j0, n_cols=width
        )
        panels.append(panel)
        j1 = j0 + width
        trailing = n - j1

        # ------------------------------------------------ trailing update
        # Build T redundantly from the Gram matrix of the distributed V.
        if virtual:
            gram_local = np.zeros((width, width))
        else:
            v = panel.v_local
            gram_local = v.T @ v
        gram = yield from comm.allreduce(gram_local)
        ctx.compute(1.0 * m_loc * width * width, kernel="update", n=n)

        # W = V^T A_trailing, assembled across the process rows.
        if virtual:
            w_local = np.zeros((width, trailing))
        else:
            w_local = panel.v_local.T @ a[:, j1:]
        w = yield from comm.allreduce(w_local)
        ctx.compute(2.0 * m_loc * width * trailing, kernel="update", n=n)

        if not virtual:
            t = larft_from_gram(gram, panel.tau)
            a[:, j1:] -= panel.v_local @ (t.T @ w)
        # Triangular T application + the local GEMM of the update.
        ctx.compute(2.0 * m_loc * width * trailing + 2.0 * width * width * trailing,
                    kernel="update", n=n)
        j0 = j1

    r = None
    if not virtual and rank == 0:
        r = np.triu(np.array(a[:n, :], copy=True))
    return DistributedQR(panels=panels, r=r, local_rows=m_loc, n=n, nb=nb)
