"""ScaLAPACK-style distributed QR: the paper's baseline.

The subpackage implements a block-row distributed Householder QR in the image
of ScaLAPACK's ``PDGEQR2``/``PDGEQRF``/``PDORGQR``: one process grid spanning
every allocated process, rank-ordered (topology-oblivious) reductions, two
allreduces per column in the panel factorization.  It serves two roles:

* the *baseline* of every comparison figure (Fig. 4 and Fig. 8); and
* the *domain factorization* of QCG-TSQR when a domain is attributed to a
  group of processes rather than a single one (paper §III).
"""

from repro.scalapack.descriptor import BlockCyclic1D, RowBlockDescriptor
from repro.scalapack.driver import (
    ScaLAPACKConfig,
    ScaLAPACKRankResult,
    ScaLAPACKRunResult,
    run_scalapack_qr,
    scalapack_qr_program,
)
from repro.scalapack.pdgeqr2 import PanelFactorization, larft_from_gram, pdgeqr2
from repro.scalapack.pdgeqrf import DEFAULT_NB, DEFAULT_NX, DistributedQR, pdgeqrf
from repro.scalapack.pdorgqr import pdorgqr

__all__ = [
    "BlockCyclic1D",
    "RowBlockDescriptor",
    "ScaLAPACKConfig",
    "ScaLAPACKRankResult",
    "ScaLAPACKRunResult",
    "run_scalapack_qr",
    "scalapack_qr_program",
    "PanelFactorization",
    "larft_from_gram",
    "pdgeqr2",
    "DEFAULT_NB",
    "DEFAULT_NX",
    "DistributedQR",
    "pdgeqrf",
    "pdorgqr",
]
