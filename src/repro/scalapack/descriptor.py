"""Distribution descriptors: how a global matrix is spread over processes.

Two descriptors are provided:

* :class:`RowBlockDescriptor` — the 1-D block-row distribution used by the
  tall-and-skinny drivers: process ``p`` owns a contiguous slice of rows and
  all columns.  With ``M >> N`` this is the layout under which ScaLAPACK's
  panel factorization (``PDGEQR2``) degenerates into "one allreduce per
  column", the communication pattern the paper measures (Table I).
* :class:`BlockCyclic1D` — the 1-D block-cyclic distribution (ScaLAPACK's
  native layout along one dimension), kept for generality, for the
  redistribution tests and to document the index arithmetic (``INDXG2L`` /
  ``INDXG2P`` analogues).

Both are pure index calculators: they never touch matrix data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DistributionError

__all__ = ["RowBlockDescriptor", "BlockCyclic1D"]


@dataclass(frozen=True)
class RowBlockDescriptor:
    """Contiguous block-row distribution of an ``m x n`` matrix over ``p`` processes."""

    m: int
    n: int
    p: int

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0:
            raise DistributionError(f"invalid global shape {self.m}x{self.n}")
        if self.p <= 0:
            raise DistributionError(f"process count must be positive, got {self.p}")

    # ------------------------------------------------------------------ api
    def row_range(self, rank: int) -> tuple[int, int]:
        """Global ``[start, stop)`` row range owned by ``rank``.

        Closed-form equivalent of ``block_ranges(m, p)[rank]`` (the first
        ``m % p`` ranks own one extra row): O(1) instead of rebuilding the
        whole O(p) range list, which the per-column loops of the distributed
        drivers call on their hot path.
        """
        self._check_rank(rank)
        base, extra = divmod(self.m, self.p)
        start = rank * base + min(rank, extra)
        return start, start + base + (1 if rank < extra else 0)

    def local_rows(self, rank: int) -> int:
        """Number of rows stored by ``rank``."""
        start, stop = self.row_range(rank)
        return stop - start

    def owner_of_row(self, i: int) -> int:
        """Rank owning global row ``i`` (closed form, O(1))."""
        if not 0 <= i < self.m:
            raise DistributionError(f"row {i} out of range [0, {self.m})")
        base, extra = divmod(self.m, self.p)
        boundary = extra * (base + 1)  # first row owned by a base-size rank
        if i < boundary:
            return i // (base + 1)
        return extra + (i - boundary) // base

    def global_to_local(self, i: int) -> tuple[int, int]:
        """Return ``(owner_rank, local_row_index)`` of global row ``i``."""
        owner = self.owner_of_row(i)
        start, _ = self.row_range(owner)
        return owner, i - start

    def local_to_global(self, rank: int, local_i: int) -> int:
        """Return the global index of ``rank``'s ``local_i``-th row."""
        start, stop = self.row_range(rank)
        if not 0 <= local_i < stop - start:
            raise DistributionError(
                f"local row {local_i} out of range for rank {rank} ({stop - start} rows)"
            )
        return start + local_i

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.p:
            raise DistributionError(f"rank {rank} out of range [0, {self.p})")


@dataclass(frozen=True)
class BlockCyclic1D:
    """1-D block-cyclic distribution of ``n_items`` items with block size ``nb``.

    Items are dealt to ``p`` owners in rounds of ``nb`` consecutive items,
    mirroring ScaLAPACK's ``INDXG2P``/``INDXG2L``/``NUMROC`` routines.
    """

    n_items: int
    nb: int
    p: int

    def __post_init__(self) -> None:
        if self.n_items < 0:
            raise DistributionError(f"negative item count {self.n_items}")
        if self.nb <= 0:
            raise DistributionError(f"block size must be positive, got {self.nb}")
        if self.p <= 0:
            raise DistributionError(f"process count must be positive, got {self.p}")

    def owner(self, g: int) -> int:
        """Owner of global item ``g`` (ScaLAPACK ``INDXG2P``)."""
        self._check_global(g)
        return (g // self.nb) % self.p

    def global_to_local(self, g: int) -> int:
        """Local index of global item ``g`` on its owner (``INDXG2L``)."""
        self._check_global(g)
        return (g // (self.nb * self.p)) * self.nb + g % self.nb

    def local_to_global(self, rank: int, l: int) -> int:
        """Global index of the ``l``-th local item of ``rank`` (``INDXL2G``)."""
        self._check_rank(rank)
        if l < 0:
            raise DistributionError(f"negative local index {l}")
        block, offset = divmod(l, self.nb)
        g = (block * self.p + rank) * self.nb + offset
        if g >= self.n_items:
            raise DistributionError(
                f"local index {l} on rank {rank} maps to {g} >= {self.n_items}"
            )
        return g

    def local_count(self, rank: int) -> int:
        """Number of items owned by ``rank`` (ScaLAPACK ``NUMROC``)."""
        self._check_rank(rank)
        full_rounds, rem = divmod(self.n_items, self.nb * self.p)
        count = full_rounds * self.nb
        rem_start = rank * self.nb
        count += int(np.clip(rem - rem_start, 0, self.nb))
        return count

    def local_indices(self, rank: int) -> np.ndarray:
        """All global indices owned by ``rank``, ascending."""
        self._check_rank(rank)
        idx = np.arange(self.n_items)
        return idx[(idx // self.nb) % self.p == rank]

    def _check_global(self, g: int) -> None:
        if not 0 <= g < self.n_items:
            raise DistributionError(f"index {g} out of range [0, {self.n_items})")

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.p:
            raise DistributionError(f"rank {rank} out of range [0, {self.p})")
