"""SPMD programs on the simulated grid, and the layer they share.

The paper's algorithms are SPMD programs: one Python function executed per
simulated MPI rank by :class:`~repro.gridsim.executor.SPMDExecutor`.  Until
this package existed, the scaffolding every such program needs — domain and
communicator setup, topology-aware reduction trees, rank-ordered result
assembly, virtual-vs-real payload dispatch and Gflop/s accounting — lived
welded inside :mod:`repro.tsqr.parallel`.  It is now a reusable layer:

* :mod:`repro.programs.spmd` — the program layer itself
  (:class:`DomainLayout`, :func:`run_program`, :func:`assemble_row_blocks`,
  payload helpers);
* :mod:`repro.programs.caqr` — distributed CAQR built on that layer: tiles
  of a general ``M x N`` matrix over the grid, each panel factored by a TSQR
  reduction along a configurable tree, trailing tiles updated with
  ``tsmqr``/``unmqr`` over the communicators (paper §VI's "factorization of
  general matrices on the grid").

:mod:`repro.tsqr.parallel` (QCG-TSQR) is rebased on the same layer and keeps
its behaviour bit-identically (same traces, same clocks).
"""

from repro.programs.caqr import (
    CAQRConfig,
    CAQRRankResult,
    CAQRRunResult,
    caqr_program,
    run_parallel_caqr,
)
from repro.programs.spmd import (
    DomainLayout,
    ProgramRun,
    assemble_row_blocks,
    build_domain_layout,
    domain_reduction_tree,
    local_block_payload,
    resolve_domain_count,
    run_program,
    triangle_nbytes,
)

__all__ = [
    "CAQRConfig",
    "CAQRRankResult",
    "CAQRRunResult",
    "caqr_program",
    "run_parallel_caqr",
    "DomainLayout",
    "ProgramRun",
    "assemble_row_blocks",
    "build_domain_layout",
    "domain_reduction_tree",
    "local_block_payload",
    "resolve_domain_count",
    "run_program",
    "triangle_nbytes",
]
