"""The SPMD program layer: scaffolding shared by the distributed algorithms.

Every distributed algorithm of this project (QCG-TSQR, the ScaLAPACK-style
baseline, distributed CAQR) is an SPMD *program* — one Python function run
per simulated MPI rank.  This module holds the scaffolding those programs
share, extracted from :mod:`repro.tsqr.parallel` where it first grew:

* **domain / communicator setup** — :func:`resolve_domain_count` and
  :func:`build_domain_layout` turn a process count plus a domain request
  into the per-rank :class:`DomainLayout` (domain index, leader flag, row
  ranges, the split per-domain communicator);
* **topology-aware reduction trees** — :func:`domain_reduction_tree` maps
  domain leaders to their hosting clusters and builds the requested
  :class:`~repro.tsqr.trees.ReductionTree` identically on every rank;
* **virtual-vs-real payload dispatch** — :func:`local_block_payload` builds
  a rank's block-row operand either as a real slice of the input matrix or
  as a shape-only :class:`~repro.virtual.matrix.VirtualMatrix`, so one
  program body serves both the numerics tests and the paper-scale sweeps;
* **rank-result assembly** — :func:`assemble_row_blocks` stacks per-rank
  block-rows in explicit rank order and reports missing blocks as a
  :class:`~repro.exceptions.FactorizationError` naming the ranks;
* **cost accounting** — :func:`run_program` executes a program on a
  platform and converts the outcome into a :class:`ProgramRun` carrying the
  simulated makespan, the achieved Gflop/s and the trace summary;
  :func:`triangle_nbytes` is the paper's ``N^2/2`` triangular message
  volume, charged by every R-factor exchange.

The extraction is behaviour-preserving: QCG-TSQR rebased on this layer
produces bit-identical traces, clocks and results (asserted by
``tests/programs/test_spmd.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, FactorizationError
from repro.gridsim.communicator import CommHandle
from repro.gridsim.executor import RankProgram, SimulationResult, SPMDExecutor
from repro.gridsim.failures import FailureSchedule
from repro.gridsim.platform import Platform
from repro.gridsim.trace import TraceSummary
from repro.scalapack.descriptor import RowBlockDescriptor
from repro.util.partition import block_ranges, partition_rows_weighted
from repro.util.shapes import triangle_doubles
from repro.util.units import DOUBLE_BYTES, gflops_rate
from repro.virtual.matrix import MatrixLike, VirtualMatrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tsqr.trees import ReductionTree

__all__ = [
    "DomainLayout",
    "ProgramRun",
    "assemble_row_blocks",
    "build_domain_layout",
    "domain_reduction_tree",
    "domain_row_ranges",
    "local_block_payload",
    "resolve_domain_count",
    "run_program",
    "triangle_nbytes",
]


def triangle_nbytes(n: int) -> int:
    """Bytes of an upper-triangular ``n x n`` factor (the paper's N^2/2 term)."""
    return triangle_doubles(n) * DOUBLE_BYTES


def resolve_domain_count(n_domains: int | None, n_processes: int) -> int:
    """Number of domains actually used for ``n_processes`` processes.

    ``None`` means one domain per process (the pure TSQR of Demmel et al.);
    otherwise the domain count must divide the process count so that every
    domain is owned by the same number of processes.
    """
    d = n_domains if n_domains is not None else n_processes
    if d > n_processes:
        raise ConfigurationError(
            f"{d} domains requested but only {n_processes} processes are available"
        )
    if n_processes % d != 0:
        raise ConfigurationError(
            f"the process count ({n_processes}) must be a multiple of the "
            f"domain count ({d})"
        )
    return d


def domain_row_ranges(
    m: int,
    n_domains: int,
    domain_weights: Sequence[float] | None = None,
) -> list[tuple[int, int]]:
    """Row range of each domain, optionally weighted for heterogeneous domains."""
    if domain_weights is not None:
        if len(domain_weights) != n_domains:
            raise ConfigurationError(
                f"{len(domain_weights)} weights for {n_domains} domains"
            )
        return partition_rows_weighted(m, domain_weights)
    return block_ranges(m, n_domains)


@dataclass(frozen=True, slots=True)
class DomainLayout:
    """Everything one rank knows about its domain after setup.

    Domains are contiguous block-rows of the global matrix; each domain is
    owned by ``ppd`` consecutive ranks whose local rows are themselves a
    block-row split of the domain (:class:`RowBlockDescriptor`).
    """

    n_domains: int
    ppd: int
    domain: int
    leader_local: int
    is_leader: bool
    dom_start: int
    dom_stop: int
    local_start: int
    local_stop: int
    desc: RowBlockDescriptor
    domain_comm: CommHandle
    domain_ranges: tuple[tuple[int, int], ...]

    @property
    def dom_rows(self) -> int:
        """Number of rows of this rank's domain."""
        return self.dom_stop - self.dom_start

    @property
    def local_rows(self) -> int:
        """Number of rows owned by this rank."""
        return self.local_stop - self.local_start

    @property
    def global_row_slice(self) -> slice:
        """Global row slice of this rank's block (within the full matrix)."""
        return slice(self.dom_start + self.local_start, self.dom_start + self.local_stop)


def build_domain_layout(
    comm: CommHandle,
    *,
    m: int,
    n: int,
    n_domains: int | None,
    domain_weights: Sequence[float] | None = None,
    min_rows: int | None = None,
):
    """Set up this rank's domain view and split the per-domain communicator.

    A generator (drive with ``yield from``): it performs a ``comm.split``,
    which can suspend the calling rank.  ``min_rows`` enforces the
    algorithm's per-domain row floor (TSQR needs every domain to produce a
    full ``n x n`` R factor, hence ``min_rows=n``); the error message names
    the constraint so the failing configuration is obvious from the
    traceback.

    Every rank of the communicator must call this, and all ranks must pass
    identical arguments.
    """
    p = comm.size
    resolved = resolve_domain_count(n_domains, p)
    ppd = p // resolved
    domain = comm.rank // ppd
    leader_local = domain * ppd
    is_leader = comm.rank == leader_local

    # Identical on every rank: computed once per run and shared through the
    # simulation-state memo (per-rank O(#domains) work becomes O(1)).
    weights_key = None if domain_weights is None else tuple(domain_weights)
    ranges = comm.state.shared(
        ("domain-row-ranges", m, resolved, weights_key),
        lambda: tuple(domain_row_ranges(m, resolved, domain_weights)),
    )
    dom_start, dom_stop = ranges[domain]
    dom_rows = dom_stop - dom_start
    if min_rows is not None and dom_rows < min_rows:
        raise ConfigurationError(
            f"domain {domain} holds {dom_rows} rows which is fewer than n={min_rows}; "
            "use fewer domains for this matrix"
        )

    desc = RowBlockDescriptor(dom_rows, n, ppd)
    local_start, local_stop = desc.row_range(comm.rank - leader_local)

    # Split once per run: one communicator per domain (used by multi-process
    # domains for the ScaLAPACK factorization and by optional broadcasts).
    domain_comm = yield from comm.split(color=domain, key=comm.rank)

    return DomainLayout(
        n_domains=resolved,
        ppd=ppd,
        domain=domain,
        leader_local=leader_local,
        is_leader=is_leader,
        dom_start=dom_start,
        dom_stop=dom_stop,
        local_start=local_start,
        local_stop=local_stop,
        desc=desc,
        domain_comm=domain_comm,
        domain_ranges=ranges,
    )


def local_block_payload(
    matrix: np.ndarray | None,
    rows: slice,
    n: int,
    *,
    n_rows: int | None = None,
) -> MatrixLike:
    """Build a rank's local block-row operand, real or virtual.

    With a real ``matrix`` the slice is copied (ranks own private storage,
    as MPI processes do); with ``matrix=None`` a shape-only
    :class:`VirtualMatrix` of ``n_rows x n`` stands in, which is how the
    paper-scale sweeps run the identical program without the memory.
    """
    if matrix is None:
        if n_rows is None:
            raise ConfigurationError("virtual payloads need an explicit row count")
        return VirtualMatrix(n_rows, n)
    return np.array(matrix[rows, :], dtype=np.float64, copy=True)


def domain_reduction_tree(
    platform: Platform,
    tree_kind: str,
    n_domains: int,
    ppd: int,
    *,
    world_rank_of: Callable[[int], int] | None = None,
) -> ReductionTree:
    """Build the reduction tree over domain leaders, topology-aware.

    Each domain is represented by the cluster hosting its leader rank
    (``domain * ppd`` translated to a world rank by ``world_rank_of``, the
    identity for the world communicator); the ``grid-hierarchical`` kind
    then reduces binary-inside-every-cluster, binary-across-clusters.  All
    ranks (and the harness) call this with identical arguments and obtain
    identical trees.
    """
    # Imported here, not at module level: the tsqr package itself builds on
    # this layer, and a module-level import would close the cycle.
    from repro.tsqr.trees import tree_for

    placement = platform.placement
    translate = world_rank_of if world_rank_of is not None else (lambda r: r)
    clusters = [placement.cluster_of(translate(d * ppd)) for d in range(n_domains)]
    return tree_for(tree_kind, n_domains, clusters)


def assemble_row_blocks(
    blocks: Mapping[int, np.ndarray | None],
    *,
    what: str = "Q",
) -> np.ndarray:
    """Stack per-rank block-rows in explicit rank order.

    Ranks own contiguous, ascending row blocks, so the global matrix is
    assembled by sorting on rank; a missing block is a bug, never a silent
    ``None``, and the error names every offending rank.
    """
    missing = sorted(rank for rank, block in blocks.items() if block is None)
    if missing:
        raise FactorizationError(
            f"explicit {what} was requested but rank(s) {missing} returned no {what} block"
        )
    stacked = [np.atleast_2d(np.asarray(blocks[rank])) for rank in sorted(blocks)]
    return np.vstack([b for b in stacked if b.shape[0] > 0])


@dataclass
class ProgramRun:
    """Harness-level outcome of one SPMD program run."""

    simulation: SimulationResult
    makespan_s: float
    gflops: float
    trace: TraceSummary

    @property
    def results(self) -> list[object]:
        """Per-rank return values of the program."""
        return self.simulation.results


def run_program(
    platform: Platform,
    program: RankProgram,
    *args: object,
    flop_count: float,
    collective_tree: str = "binary",
    record_messages: bool = False,
    engine: str | None = None,
    failures: "FailureSchedule | None" = None,
    streaming_stats: bool | None = None,
    **kwargs: object,
) -> ProgramRun:
    """Run an SPMD program on ``platform`` and summarise its performance.

    ``flop_count`` is the number of *useful* flops credited to the run (the
    paper's Gflop/s denominator), not the number executed — TSQR's redundant
    combine flops, for instance, are excluded by convention.  ``engine``
    selects the executor backend (``None`` = the executor default);
    ``failures`` injects a deterministic rank-death schedule;
    ``streaming_stats`` overrides the always-on streaming observability
    (the benchmark overhead gate passes False).
    """
    executor = SPMDExecutor(
        platform,
        record_messages=record_messages,
        collective_tree=collective_tree,
        engine=engine,
        failures=failures,
        streaming_stats=streaming_stats,
    )
    sim = executor.run(program, *args, **kwargs)
    return ProgramRun(
        simulation=sim,
        makespan_s=sim.makespan,
        gflops=gflops_rate(flop_count, sim.makespan),
        trace=sim.trace,
    )
