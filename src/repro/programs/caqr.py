"""Distributed CAQR: general-matrix QR on the simulated grid (paper §VI).

The paper closes by presenting its grid TSQR as "a first step towards the
factorization of general matrices on the grid".  This module takes that
step: CAQR as an SPMD program on the :mod:`repro.gridsim` platform, built on
the shared program layer of :mod:`repro.programs.spmd`.

Algorithm (the tiled CAQR of §II-C/§II-E, distributed):

1. the ``M x N`` matrix is tiled into ``mt x nt`` blocks of ``tile_size``;
   *tile rows* are distributed over the ranks in contiguous blocks, so every
   rank owns a block-row of the matrix (all ``nt`` tiles of its tile rows);
2. panel ``k`` is factored by a TSQR reduction over the tile rows
   ``k .. mt-1``: each participating rank factors its local tiles
   (``geqrt``), updates its own trailing tiles (``unmqr``), flat-reduces its
   local triangles (``tsqrt``/``tsmqr``, no messages), and the per-rank
   triangles are then reduced along a configurable tree — ``flat``,
   ``binary`` or the paper's ``grid-hierarchical`` (binary inside every
   cluster, binary across clusters, one inter-cluster message per tree edge);
3. a cross-rank combine couples the *trailing rows* of the two ranks: the
   child sends its panel triangle plus its trailing tile row up the tree,
   the parent runs ``tsqrt``/``tsmqr`` and returns the child's updated
   trailing row down the same edge.  Messages therefore come in up/down
   pairs per tree edge per panel, the up payload charged the paper's
   triangular ``N^2/2``-style volume plus the trailing row, the down payload
   the trailing row alone.

Real payloads give exact numerics — R matches ``numpy.linalg.qr`` at machine
precision for every panel tree; virtual payloads run the *identical*
schedule (same messages, same byte counts, same flop charges, asserted by
the trace-equivalence tests), which is how the general-matrix sweeps execute
at paper scale.  The structured flop counts charged per kernel live in
:mod:`repro.virtual.flops` and are shared with the analytic cost model
(:func:`repro.model.costs.caqr_costs`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, TreeError
from repro.gridsim.executor import RankContext, SimulationResult
from repro.gridsim.failures import FailureSchedule
from repro.gridsim.platform import Platform
from repro.gridsim.trace import TraceSummary
from repro.kernels.tiled import geqrt, tsmqr, tsqrt, unmqr
from repro.programs.spmd import assemble_row_blocks, run_program
from repro.tsqr.trees import ReductionTree, tree_for
from repro.util.partition import TileGrid, block_ranges, tile_ranges
from repro.util.units import DOUBLE_BYTES
from repro.virtual.flops import (
    caqr_combine_flops,
    caqr_down_message_doubles,
    caqr_panel_leaf_flops,
    caqr_up_message_doubles,
    qr_flops,
)
from repro.virtual.matrix import MatrixLike, VirtualMatrix, is_virtual, shape_of

__all__ = [
    "CAQRConfig",
    "CAQRRankResult",
    "CAQRRunResult",
    "caqr_program",
    "run_parallel_caqr",
    "tile_ranges",
    "PANEL_TREE_KINDS",
]

#: Message tags of the panel reduction (up) and trailing write-back (down).
_TAG_UP = "caqr-reduce"
_TAG_DOWN = "caqr-update"

#: Panel reduction trees the distributed CAQR accepts.
PANEL_TREE_KINDS = ("flat", "binary", "grid-hierarchical")


@dataclass(frozen=True)
class CAQRConfig:
    """Configuration of one distributed CAQR run.

    Unlike :class:`~repro.tsqr.parallel.TSQRConfig` the matrix may be any
    shape — tall, square or fat — and ``tile_size`` bounds both tile
    dimensions (row and column boundaries coincide so diagonal tiles sit on
    the global diagonal, as in every tiled QR formulation).
    """

    m: int
    n: int
    tile_size: int = 64
    panel_tree: str = "binary"
    nb: int = 32
    matrix: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ConfigurationError(
                f"matrix dimensions must be positive, got {self.m} x {self.n}"
            )
        if self.tile_size <= 0:
            raise ConfigurationError(f"tile size must be positive, got {self.tile_size}")
        if self.panel_tree not in PANEL_TREE_KINDS:
            raise ConfigurationError(
                f"unknown panel tree {self.panel_tree!r}; choose from {PANEL_TREE_KINDS}"
            )
        if self.matrix is not None and self.matrix.shape != (self.m, self.n):
            raise ConfigurationError(
                f"matrix shape {self.matrix.shape} does not match ({self.m}, {self.n})"
            )

    @property
    def virtual(self) -> bool:
        """True when the run uses shape-only payloads."""
        return self.matrix is None

    def flop_count(self) -> float:
        """Useful flops credited to the run (the Gflop/s denominator)."""
        return qr_flops(self.m, self.n)


@dataclass
class CAQRRankResult:
    """Per-rank return value of the CAQR SPMD program."""

    rank: int
    row_start: int
    row_stop: int
    n_tile_rows: int
    a_local: np.ndarray | None

    @property
    def local_rows(self) -> int:
        """Number of matrix rows owned by this rank."""
        return self.row_stop - self.row_start


def _padded_triangle(tile: MatrixLike, r: MatrixLike) -> MatrixLike:
    """Store the triangle ``r`` into a full-size tile (zero-padded below)."""
    if is_virtual(tile):
        return VirtualMatrix(tile.m, tile.n, structure="upper")
    out = np.zeros_like(np.asarray(tile))
    kk = min(shape_of(r)[0], out.shape[0])
    out[:kk, :] = np.asarray(r)[:kk, :]
    return out


def _zero_tile(tile: MatrixLike) -> MatrixLike:
    """Replace an eliminated panel tile with explicit zeros (same shape)."""
    if is_virtual(tile):
        return VirtualMatrix(tile.m, tile.n)
    return np.zeros_like(np.asarray(tile))


def caqr_program(ctx: RankContext, config: CAQRConfig):
    """The distributed CAQR SPMD program (one call per simulated MPI process).

    A generator: the executor drives it, and its cross-rank reduction
    receives suspend via ``yield from``.
    """
    comm = ctx.comm
    p = comm.size
    m, n = config.m, config.n
    # Tilings and the tile-row distribution are identical on every rank:
    # built once per run, shared through the simulation-state memo.  All tile
    # index arithmetic goes through the shared TileGrid helper.
    grid: TileGrid = ctx.shared(
        ("tile-grid", m, n, config.tile_size),
        lambda: TileGrid(m, n, config.tile_size),
    )
    row_ranges = grid.row_ranges
    col_ranges = grid.col_ranges
    mt, nt = grid.mt, grid.nt

    # Contiguous block distribution of tile rows over ranks (a rank owns all
    # nt tiles of its tile rows); ranks beyond mt tile rows own nothing.
    owners = ctx.shared(("block-ranges", mt, p), lambda: block_ranges(mt, p))
    t0, t1 = owners[comm.rank]
    row0 = row_ranges[t0][0] if t1 > t0 else 0
    row1 = row_ranges[t1 - 1][1] if t1 > t0 else 0

    tile_height = grid.row_height

    # Local tile storage: real slices of the input, or shape-only stand-ins.
    tiles: dict[tuple[int, int], MatrixLike] = {}
    for i in range(t0, t1):
        r0, r1 = row_ranges[i]
        for j in range(nt):
            c0, c1 = col_ranges[j]
            if config.virtual:
                tiles[i, j] = VirtualMatrix(r1 - r0, c1 - c0)
            else:
                tiles[i, j] = np.array(
                    config.matrix[r0:r1, c0:c1], dtype=np.float64, copy=True
                )

    # Cluster of every rank, identical on all ranks, for the panel trees.
    placement = ctx.platform.placement
    rank_clusters = ctx.shared(
        ("rank-clusters", comm.core.comm_id),
        lambda: tuple(
            placement.cluster_of(comm.core.world_rank(r)) for r in range(p)
        ),
    )
    inner_b = min(config.nb, config.tile_size)

    for k in range(min(mt, nt)):
        if t1 <= k or t1 == t0:
            # All of this rank's tile rows sit above the current panel (or it
            # owns none): it is done with every remaining panel too.
            break
        c0k, c1k = col_ranges[k]
        wk = c1k - c0k
        trailing = list(range(k + 1, nt))
        trail_cols = n - c1k

        participants = [
            r for r in range(p) if owners[r][1] > k and owners[r][1] > owners[r][0]
        ]
        pos = participants.index(comm.rank)
        i_top = max(t0, k)
        h_top = tile_height(i_top)

        # ------------------------------------------------- local leaf stage
        # geqrt every local tile row of the panel and update its own trailing
        # tiles; flops are summed and charged in one batch (same totals on the
        # real and the virtual path — the trace-equivalence contract), from
        # the same helper the cost model sums.
        leaf_flops = caqr_panel_leaf_flops(
            [tile_height(i) for i in range(i_top, t1)], wk, trail_cols
        )
        for i in range(i_top, t1):
            fact = geqrt(tiles[i, k], block_size=inner_b)
            tiles[i, k] = _padded_triangle(tiles[i, k], fact.r)
            for j in trailing:
                tiles[i, j] = unmqr(fact, tiles[i, j], transpose=True)
        ctx.compute(leaf_flops, kernel="qr_leaf", n=wk)

        # ------------------------------------- local flat reduction (no msgs)
        combine_flops = 0.0
        for i in range(i_top + 1, t1):
            combine_flops += caqr_combine_flops(tile_height(i), wk, trail_cols)
            ts = tsqrt(tiles[i_top, k], tiles[i, k], block_size=inner_b)
            tiles[i_top, k] = _padded_triangle(tiles[i_top, k], ts.r)
            tiles[i, k] = _zero_tile(tiles[i, k])
            for j in trailing:
                top, bottom = tsmqr(ts, tiles[i_top, j], tiles[i, j], transpose=True)
                tiles[i_top, j] = top
                tiles[i, j] = bottom
        if combine_flops:
            ctx.compute(combine_flops, kernel="qr_combine", n=wk)

        # --------------------------------- cross-rank reduction along the tree
        # Position 0 is the rank owning diagonal tile row k; it must be the
        # reduction root so the panel's R lands on the global diagonal.
        # Panels sharing a participant set share one tree (built by the first
        # participating rank to reach this panel).
        tree: ReductionTree = ctx.shared(
            ("caqr-panel-tree", comm.core.comm_id, config.panel_tree, tuple(participants)),
            lambda: tree_for(
                config.panel_tree,
                len(participants),
                [rank_clusters[r] for r in participants],
            ),
        )
        if tree.root != 0:
            raise TreeError("panel reduction tree must be rooted at the diagonal tile")

        for child_pos in tree.children(pos):
            child = participants[child_pos]
            h_child = tile_height(max(owners[child][0], k))
            panel_tile, trail_tiles = yield from comm.recv(source=child, tag=_TAG_UP)
            ctx.compute(
                caqr_combine_flops(h_child, wk, trail_cols), kernel="qr_combine", n=wk
            )
            ts = tsqrt(tiles[i_top, k], panel_tile, block_size=inner_b)
            tiles[i_top, k] = _padded_triangle(tiles[i_top, k], ts.r)
            if trailing:
                down = []
                for idx, j in enumerate(trailing):
                    top, bottom = tsmqr(
                        ts, tiles[i_top, j], trail_tiles[idx], transpose=True
                    )
                    tiles[i_top, j] = top
                    down.append(bottom)
                comm.send(
                    down,
                    dest=child,
                    tag=_TAG_DOWN,
                    nbytes=caqr_down_message_doubles(h_child, trail_cols) * DOUBLE_BYTES,
                )

        if pos != tree.root:
            parent = participants[tree.parent(pos)]
            payload = (tiles[i_top, k], [tiles[i_top, j] for j in trailing])
            comm.send(
                payload,
                dest=parent,
                tag=_TAG_UP,
                nbytes=caqr_up_message_doubles(wk, h_top, trail_cols) * DOUBLE_BYTES,
            )
            tiles[i_top, k] = _zero_tile(tiles[i_top, k])
            if trailing:
                down = yield from comm.recv(source=parent, tag=_TAG_DOWN)
                for idx, j in enumerate(trailing):
                    tiles[i_top, j] = down[idx]

    # --------------------------------------------------------- local assembly
    a_local: np.ndarray | None = None
    if not config.virtual:
        a_local = np.zeros((row1 - row0, n))
        for i in range(t0, t1):
            r0, r1 = row_ranges[i]
            for j in range(nt):
                c0, c1 = col_ranges[j]
                a_local[r0 - row0 : r1 - row0, c0:c1] = np.asarray(tiles[i, j])

    return CAQRRankResult(
        rank=comm.rank,
        row_start=row0,
        row_stop=row1,
        n_tile_rows=t1 - t0,
        a_local=a_local,
    )


@dataclass
class CAQRRunResult:
    """Harness-level outcome of one distributed CAQR run."""

    config: CAQRConfig
    r: np.ndarray | None
    makespan_s: float
    gflops: float
    trace: TraceSummary
    tree: ReductionTree | None
    simulation: SimulationResult = field(repr=False)

    @property
    def time_s(self) -> float:
        """Simulated wall-clock time of the factorization."""
        return self.makespan_s


def run_parallel_caqr(
    platform: Platform,
    config: CAQRConfig,
    *,
    collective_tree: str = "binary",
    record_messages: bool = False,
    engine: str | None = None,
    failures: "FailureSchedule | None" = None,
) -> CAQRRunResult:
    """Run distributed CAQR on ``platform`` and summarise its performance.

    With a real payload the global R factor (``min(M, N) x N``, validated
    against LAPACK by the tests) is assembled from the per-rank block-rows;
    virtual runs return ``r=None`` and the cost/trace summary only.

    ``failures`` injects a deterministic rank-death schedule.  SPMD CAQR
    has no recovery path — by design: its communication structure is baked
    into the program text, so a death surfaces as an uncaught
    :class:`~repro.exceptions.RankFailedError`.  The DAG runtime's
    graph-driven recovery (``run_dag_factorization(..., failures=...)``)
    is the capability this gap demonstrates.
    """
    run = run_program(
        platform,
        caqr_program,
        config,
        flop_count=config.flop_count(),
        collective_tree=collective_tree,
        record_messages=record_messages,
        engine=engine,
        failures=failures,
    )
    results: list[CAQRRankResult] = list(run.results)
    r = None
    if not config.virtual:
        blocks = {
            res.rank: res.a_local for res in results if res.row_stop > res.row_start
        }
        factored = assemble_row_blocks(blocks, what="R")
        kmin = min(config.m, config.n)
        r = np.triu(factored[:kmin, :])
    # The panel-0 reduction tree (over every rank owning tile rows) is the
    # widest of the run and the one reported for locality analysis.
    mt = TileGrid(config.m, config.n, config.tile_size).mt
    owners = block_ranges(mt, platform.n_processes)
    owning = [rk for rk, (a, b) in enumerate(owners) if b > a]
    tree = tree_for(
        config.panel_tree,
        len(owning),
        [platform.placement.cluster_of(rk) for rk in owning],
    )
    return CAQRRunResult(
        config=config,
        r=r,
        makespan_s=run.makespan_s,
        gflops=run.gflops,
        trace=run.trace,
        tree=tree,
        simulation=run.simulation,
    )
