"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so downstream
users can catch the whole family with a single ``except`` clause while still
being able to distinguish configuration problems from numerical or
simulation-level failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "PlacementError",
    "AllocationError",
    "CommunicatorError",
    "SimulationError",
    "DeadlockError",
    "RankFailedError",
    "ServiceUnavailableError",
    "DistributionError",
    "FactorizationError",
    "TreeError",
    "ShapeError",
    "VirtualPayloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An experiment, platform or algorithm configuration is invalid."""


class TopologyError(ConfigurationError):
    """A grid/cluster/node topology description is inconsistent."""


class PlacementError(ConfigurationError):
    """A process placement does not match the platform it targets."""


class AllocationError(ReproError):
    """The meta-scheduler could not satisfy a :class:`JobProfile` request."""


class CommunicatorError(ReproError):
    """Misuse of the simulated MPI communicator (bad rank, tag, or group)."""


class SimulationError(ReproError):
    """A rank program raised, or the SPMD execution could not complete."""


class DeadlockError(SimulationError):
    """The SPMD execution stalled: some ranks are blocked forever."""


class RankFailedError(SimulationError):
    """A communicator operation involved a rank that died mid-simulation.

    Raised *inside* a surviving rank's program (in virtual time) when it
    touches a communicator whose group contains a failed rank — the
    simulated analogue of ULFM's ``MPI_ERR_PROC_FAILED`` /
    ``MPI_ERR_REVOKED``.  Fault-tolerant programs (the DAG runtime's
    recovery path) catch it and rebuild on a survivors-only communicator;
    everything else (the SPMD programs) lets it propagate, which aborts the
    run with this same type."""


class ServiceUnavailableError(ReproError):
    """The simulation service could not be reached.

    Raised by the TCP client helpers after the bounded retry budget
    (connect/read timeouts, exponential backoff between attempts) is
    exhausted.  Carries the last underlying transport error in its
    message; queries are pure cache lookups/simulations, so the retries
    that preceded it were safe to issue."""


class DistributionError(ReproError):
    """A distributed matrix descriptor or redistribution request is invalid."""


class FactorizationError(ReproError):
    """A QR factorization could not be computed (bad shapes, rank deficiency
    in algorithms that require full column rank, ...)."""


class TreeError(ReproError):
    """A reduction tree is malformed (not spanning, wrong leaf count, ...)."""


class ShapeError(ReproError, ValueError):
    """An array or virtual matrix has an incompatible shape."""


class VirtualPayloadError(ReproError):
    """An operation requiring real numeric data was attempted on a
    :class:`~repro.virtual.matrix.VirtualMatrix` payload."""
