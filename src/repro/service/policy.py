"""Tiered auto-escalation: Eq. (1) predictor first, full simulation second.

A "best config" query ("which tile size / tree / domain count is fastest
for my (M, N, P, network)?") does not need every candidate simulated.  The
paper's Eq. (1) closed forms cost microseconds and rank candidates well;
full DAG/SPMD simulation costs seconds and ranks them exactly.  The policy
joins the two tiers:

1. every candidate is ranked by its predicted time (:func:`predicted_time`,
   dispatching to the :mod:`repro.model.costs` closed form of its
   algorithm);
2. only the *shortlist* escalates to full simulation — the candidates whose
   predicted time lies within ``(1 + margin)`` of the predicted best,
   truncated to ``top_k``;
3. the answer is the simulated-fastest of the shortlist.

The safety argument, tested on a pinned sweep: as long as the predictor's
relative error against simulation stays within ``margin`` (its measured
error band), the *true* best candidate's predicted time cannot exceed
``(1 + margin)`` times the predicted best — so it is in the shortlist and
the policy returns exactly the exhaustive-simulation answer while running
at most ``top_k`` simulations.  Escalated points go through the runner, so
they land in the shared result cache like any other query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.grid5000 import (
    PAPER_LATENCY_MS,
    PAPER_THROUGHPUT_MBITS,
    Grid5000Settings,
    grid5000_kernel_model,
)
from repro.experiments.runner import ExperimentPoint, ExperimentRunner, PointSpec
from repro.model.costs import (
    caqr_costs,
    dag_caqr_costs,
    dag_cholesky_costs,
    dag_lu_costs,
    scalapack_costs,
    tsqr_costs,
)
from repro.model.predictor import MachineParameters, Prediction, predict
from repro.service.keys import canonical_spec

__all__ = [
    "BestConfigResult",
    "EscalationPolicy",
    "RankedCandidate",
    "machine_for",
    "predict_spec",
    "predicted_time",
    "rank_candidates",
]


def machine_for(
    spec: PointSpec, settings: Grid5000Settings | None = None
) -> MachineParameters:
    """Eq. (1) constants for one configuration on the simulated platform.

    Multi-site runs are dominated by the wide-area links (milliseconds,
    tens of Mb/s — the worst published pair, conservatively); single-site
    runs by the cluster interconnect.  The domain rate is the calibrated
    ``qr_leaf`` kernel rate at the panel width, the same curve the
    simulator charges.
    """
    settings = settings or Grid5000Settings()
    if spec.n_sites > 1:
        latency_s = max(PAPER_LATENCY_MS.values()) / 1e3
        bandwidth = min(PAPER_THROUGHPUT_MBITS.values()) * 1e6 / 8.0
    else:
        site = ("orsay", "orsay")
        latency_s = PAPER_LATENCY_MS[site] / 1e3
        bandwidth = PAPER_THROUGHPUT_MBITS[site] * 1e6 / 8.0
    width = spec.tile_size if spec.tile_size is not None else spec.n
    rate = grid5000_kernel_model(settings).rate("qr_leaf", width)
    return MachineParameters.from_link(
        latency_s=latency_s,
        bandwidth_bytes_per_s=bandwidth,
        domain_gflops=rate / 1e9,
    )


def _processes(spec: PointSpec, settings: Grid5000Settings) -> int:
    return spec.n_sites * settings.nodes_per_cluster * settings.processes_per_node


def predict_spec(
    spec: PointSpec, settings: Grid5000Settings | None = None
) -> Prediction:
    """Eq. (1) prediction for one :class:`PointSpec` (any algorithm)."""
    settings = settings or Grid5000Settings()
    spec = canonical_spec(spec)
    p = _processes(spec, settings)
    if spec.algorithm == "scalapack":
        costs = scalapack_costs(spec.m, spec.n, p, want_q=spec.want_q)
    elif spec.algorithm == "tsqr":
        n_domains = (spec.domains_per_cluster or 1) * spec.n_sites
        costs = tsqr_costs(spec.m, spec.n, n_domains, want_q=spec.want_q)
    elif spec.algorithm == "caqr" and spec.runtime == "dag":
        costs = dag_caqr_costs(
            spec.m, spec.n, p, tile_size=spec.tile_size,
            panel_tree=spec.tree_kind, placement=spec.placement,
        )
    elif spec.algorithm == "caqr":
        costs = caqr_costs(
            spec.m, spec.n, p, tile_size=spec.tile_size, panel_tree=spec.tree_kind
        )
    elif spec.algorithm == "cholesky":
        costs = dag_cholesky_costs(
            spec.n, p, tile_size=spec.tile_size, placement=spec.placement
        )
    elif spec.algorithm == "lu":
        costs = dag_lu_costs(
            spec.m, spec.n, p, tile_size=spec.tile_size, placement=spec.placement
        )
    else:  # pragma: no cover - PointSpec validation forbids this
        raise ConfigurationError(f"no predictor for algorithm {spec.algorithm!r}")
    return predict(costs, machine_for(spec, settings))


def predicted_time(
    spec: PointSpec, settings: Grid5000Settings | None = None
) -> float:
    """Predicted wall time (seconds) of one configuration."""
    return predict_spec(spec, settings).time_s


@dataclass(frozen=True)
class RankedCandidate:
    """One candidate with its cheap-tier prediction."""

    spec: PointSpec
    predicted_s: float


def rank_candidates(
    candidates: Iterable[PointSpec], settings: Grid5000Settings | None = None
) -> list[RankedCandidate]:
    """All candidates sorted by predicted time, fastest first."""
    ranked = [
        RankedCandidate(spec=s, predicted_s=predicted_time(s, settings))
        for s in candidates
    ]
    if not ranked:
        raise ConfigurationError("a best-config query needs at least one candidate")
    return sorted(ranked, key=lambda c: (c.predicted_s, repr(c.spec)))


@dataclass(frozen=True)
class BestConfigResult:
    """Outcome of one escalated best-config query."""

    best: ExperimentPoint
    ranked: tuple[RankedCandidate, ...]
    simulated: tuple[ExperimentPoint, ...]

    @property
    def simulations(self) -> int:
        """Number of candidates that escalated to full simulation."""
        return len(self.simulated)


@dataclass(frozen=True)
class EscalationPolicy:
    """Explicit escalation knobs: shortlist size and predictor error band.

    ``top_k`` bounds how many candidates may escalate; ``margin`` is the
    predictor's trusted relative error band — candidates predicted more
    than ``(1 + margin)`` times slower than the predicted best are ruled
    out without simulating them.
    """

    top_k: int = 3
    margin: float = 0.5

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {self.top_k}")
        if self.margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {self.margin}")

    def shortlist(
        self, ranked: Sequence[RankedCandidate]
    ) -> list[RankedCandidate]:
        """The candidates worth simulating: within the band, at most top_k."""
        cutoff = (1.0 + self.margin) * ranked[0].predicted_s
        return [c for c in ranked if c.predicted_s <= cutoff][: self.top_k]

    def best_config(
        self, candidates: Iterable[PointSpec], runner: ExperimentRunner
    ) -> BestConfigResult:
        """Answer a best-config query with at most ``top_k`` simulations."""
        ranked = rank_candidates(candidates, runner.settings)
        shortlist = self.shortlist(ranked)
        simulated = tuple(runner.run_point(c.spec) for c in shortlist)
        best = min(simulated, key=lambda p: p.time_s)
        return BestConfigResult(best=best, ranked=tuple(ranked), simulated=simulated)
