"""Tiered auto-escalation: Eq. (1) predictor first, full simulation second.

A "best config" query ("which tile size / tree / domain count is fastest
for my (M, N, P, network)?") does not need every candidate simulated.  The
paper's Eq. (1) closed forms cost microseconds and rank candidates well;
full DAG/SPMD simulation costs seconds and ranks them exactly.  The policy
joins the two tiers:

1. every candidate is ranked by its predicted time (:func:`predicted_time`,
   dispatching to the :mod:`repro.model.costs` closed form of its
   algorithm);
2. only the *shortlist* escalates to full simulation — the candidates whose
   predicted time lies within ``(1 + margin)`` of the predicted best,
   truncated to ``top_k``;
3. the answer is the simulated-fastest of the shortlist.

The safety argument, tested on a pinned sweep: as long as the predictor's
relative error against simulation stays within ``margin`` (its measured
error band), the *true* best candidate's predicted time cannot exceed
``(1 + margin)`` times the predicted best — so it is in the shortlist and
the policy returns exactly the exhaustive-simulation answer while running
at most ``top_k`` simulations.  Escalated points go through the runner, so
they land in the shared result cache like any other query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.grid5000 import (
    PAPER_LATENCY_MS,
    PAPER_THROUGHPUT_MBITS,
    Grid5000Settings,
    grid5000_kernel_model,
)
from repro.experiments.runner import ExperimentPoint, ExperimentRunner, PointSpec
from repro.model.costs import (
    caqr_costs,
    dag_caqr_costs,
    dag_cholesky_costs,
    dag_lu_costs,
    scalapack_costs,
    tsqr_costs,
)
from repro.model.predictor import MachineParameters, Prediction, predict
from repro.service.keys import canonical_spec

__all__ = [
    "BestConfigResult",
    "EscalationPolicy",
    "RankedCandidate",
    "machine_for",
    "predict_spec",
    "predicted_time",
    "rank_candidates",
]


def machine_for(
    spec: PointSpec, settings: Grid5000Settings | None = None
) -> MachineParameters:
    """Eq. (1) constants for one configuration on the simulated platform.

    Multi-site runs are dominated by the wide-area links (milliseconds,
    tens of Mb/s — the worst published pair, conservatively); single-site
    runs by the cluster interconnect.  The domain rate is the calibrated
    ``qr_leaf`` kernel rate at the panel width, the same curve the
    simulator charges.
    """
    settings = settings or Grid5000Settings()
    if spec.n_sites > 1:
        latency_s = max(PAPER_LATENCY_MS.values()) / 1e3
        bandwidth = min(PAPER_THROUGHPUT_MBITS.values()) * 1e6 / 8.0
    else:
        site = ("orsay", "orsay")
        latency_s = PAPER_LATENCY_MS[site] / 1e3
        bandwidth = PAPER_THROUGHPUT_MBITS[site] * 1e6 / 8.0
    width = spec.tile_size if spec.tile_size is not None else spec.n
    rate = grid5000_kernel_model(settings).rate("qr_leaf", width)
    return MachineParameters.from_link(
        latency_s=latency_s,
        bandwidth_bytes_per_s=bandwidth,
        domain_gflops=rate / 1e9,
    )


def _processes(spec: PointSpec, settings: Grid5000Settings) -> int:
    return spec.n_sites * settings.nodes_per_cluster * settings.processes_per_node


def predict_spec(
    spec: PointSpec, settings: Grid5000Settings | None = None
) -> Prediction:
    """Eq. (1) prediction for one :class:`PointSpec` (any algorithm)."""
    settings = settings or Grid5000Settings()
    spec = canonical_spec(spec)
    p = _processes(spec, settings)
    if spec.algorithm == "scalapack":
        costs = scalapack_costs(spec.m, spec.n, p, want_q=spec.want_q)
    elif spec.algorithm == "tsqr":
        n_domains = (spec.domains_per_cluster or 1) * spec.n_sites
        costs = tsqr_costs(spec.m, spec.n, n_domains, want_q=spec.want_q)
    elif spec.algorithm == "caqr" and spec.runtime == "dag":
        costs = dag_caqr_costs(
            spec.m, spec.n, p, tile_size=spec.tile_size,
            panel_tree=spec.tree_kind, placement=spec.placement,
        )
    elif spec.algorithm == "caqr":
        costs = caqr_costs(
            spec.m, spec.n, p, tile_size=spec.tile_size, panel_tree=spec.tree_kind
        )
    elif spec.algorithm == "cholesky":
        costs = dag_cholesky_costs(
            spec.n, p, tile_size=spec.tile_size, placement=spec.placement
        )
    elif spec.algorithm == "lu":
        costs = dag_lu_costs(
            spec.m, spec.n, p, tile_size=spec.tile_size, placement=spec.placement
        )
    else:  # pragma: no cover - PointSpec validation forbids this
        raise ConfigurationError(f"no predictor for algorithm {spec.algorithm!r}")
    return predict(costs, machine_for(spec, settings))


def predicted_time(
    spec: PointSpec, settings: Grid5000Settings | None = None
) -> float:
    """Predicted wall time (seconds) of one configuration."""
    return predict_spec(spec, settings).time_s


@dataclass(frozen=True)
class RankedCandidate:
    """One candidate with its cheap-tier prediction."""

    spec: PointSpec
    predicted_s: float


def rank_candidates(
    candidates: Iterable[PointSpec], settings: Grid5000Settings | None = None
) -> list[RankedCandidate]:
    """All candidates sorted by predicted time, fastest first."""
    ranked = [
        RankedCandidate(spec=s, predicted_s=predicted_time(s, settings))
        for s in candidates
    ]
    if not ranked:
        raise ConfigurationError("a best-config query needs at least one candidate")
    return sorted(ranked, key=lambda c: (c.predicted_s, repr(c.spec)))


@dataclass(frozen=True)
class BestConfigResult:
    """Outcome of one escalated best-config query.

    When the simulation tier is unavailable (every shortlisted escalation
    raised), the answer degrades to the predictor ranking alone: ``best``
    is None, ``degraded`` is True and :attr:`best_candidate` carries the
    predicted-fastest configuration.  A *partially* failed escalation (some
    shortlist members simulated, some raised) still returns a simulated
    ``best`` but keeps the ``degraded`` flag, because the failed candidates
    were never compared."""

    best: ExperimentPoint | None
    ranked: tuple[RankedCandidate, ...]
    simulated: tuple[ExperimentPoint, ...]
    #: True when the answer rests (partly) on the predictor tier only.
    degraded: bool = False
    #: One message per shortlisted candidate whose simulation raised.
    errors: tuple[str, ...] = ()

    @property
    def simulations(self) -> int:
        """Number of candidates that escalated to full simulation."""
        return len(self.simulated)

    @property
    def best_candidate(self) -> RankedCandidate:
        """The winning configuration: simulated best, else predicted best."""
        if self.best is not None:
            spec = canonical_spec(self.best.spec)
            for candidate in self.ranked:
                if canonical_spec(candidate.spec) == spec:
                    return candidate
        return self.ranked[0]


@dataclass(frozen=True)
class EscalationPolicy:
    """Explicit escalation knobs: shortlist size and predictor error band.

    ``top_k`` bounds how many candidates may escalate; ``margin`` is the
    predictor's trusted relative error band — candidates predicted more
    than ``(1 + margin)`` times slower than the predicted best are ruled
    out without simulating them.
    """

    top_k: int = 3
    margin: float = 0.5

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {self.top_k}")
        if self.margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {self.margin}")

    def shortlist(
        self, ranked: Sequence[RankedCandidate]
    ) -> list[RankedCandidate]:
        """The candidates worth simulating: within the band, at most top_k."""
        cutoff = (1.0 + self.margin) * ranked[0].predicted_s
        return [c for c in ranked if c.predicted_s <= cutoff][: self.top_k]

    def best_config(
        self, candidates: Iterable[PointSpec], runner: ExperimentRunner
    ) -> BestConfigResult:
        """Answer a best-config query with at most ``top_k`` simulations.

        Escalation failures are isolated per candidate: a shortlisted spec
        whose simulation raises is recorded in ``errors`` and skipped, the
        remaining shortlist still competes.  If *no* escalation survives,
        the predictor-only answer is returned flagged ``degraded`` instead
        of failing the whole query — the cheap tier costs microseconds and
        is always available.  Configuration errors (an invalid candidate)
        still raise: they are the caller's bug, not a tier outage.
        """
        ranked = rank_candidates(candidates, runner.settings)
        shortlist = self.shortlist(ranked)
        simulated: list[ExperimentPoint] = []
        errors: list[str] = []
        for candidate in shortlist:
            try:
                simulated.append(runner.run_point(candidate.spec))
            except ConfigurationError:
                raise
            except ReproError as exc:
                errors.append(f"{candidate.spec.algorithm} "
                              f"tile={candidate.spec.tile_size}: {exc}")
        best = min(simulated, key=lambda p: p.time_s) if simulated else None
        return BestConfigResult(
            best=best,
            ranked=tuple(ranked),
            simulated=tuple(simulated),
            degraded=bool(errors),
            errors=tuple(errors),
        )
