"""Simulation-as-a-service: cached, batched, tiered query answering.

The paper's end use is a *query*: "what is the best tree / tile size /
domain placement for my (M, N, P, network)?".  After the generator-core
engine (PR 6) made one simulation fast, the bottleneck became the volume of
simulations — every figure re-run and sweep point re-simulated from
scratch.  This package turns simulate/predict into a service:

* :mod:`repro.service.keys`   — canonical config keys: a stable content
  hash over the fully-canonicalised simulation config, with dict-order,
  default-filling and irrelevant-field invariance, versioned by the
  engine-semantics tag;
* :mod:`repro.service.cache`  — two-level result cache: in-memory LRU in
  front of an on-disk content-addressed store under ``results/cache/``
  (atomic writes, survives across CLI invocations and worker processes);
* :mod:`repro.service.server` — asyncio front-end: warm queries answer on
  the event loop, identical in-flight queries are deduplicated
  (single-flight), cold misses are batched to the runner's prefetch
  machinery; plus the JSON-lines TCP protocol of ``repro serve``/``repro
  query``;
* :mod:`repro.service.policy` — tiered auto-escalation for best-config
  queries: every candidate ranked by the Eq. (1) closed forms, only the
  top-k within the predictor's error band escalated to full DAG/SPMD
  simulation.
"""

from repro.service.cache import CacheStats, ResultCache, default_cache_root
from repro.service.keys import (
    ENGINE_SEMANTICS_VERSION,
    canonical_config,
    canonical_spec,
    config_key,
    spec_from_config,
)
from repro.service.policy import (
    BestConfigResult,
    EscalationPolicy,
    RankedCandidate,
    machine_for,
    predict_spec,
    predicted_time,
    rank_candidates,
)
from repro.service.server import (
    ServiceReply,
    ServiceStats,
    SimulationService,
    remote_burst,
    remote_query,
    remote_stats,
)

__all__ = [
    "ENGINE_SEMANTICS_VERSION",
    "canonical_config",
    "canonical_spec",
    "config_key",
    "spec_from_config",
    "CacheStats",
    "ResultCache",
    "default_cache_root",
    "BestConfigResult",
    "EscalationPolicy",
    "RankedCandidate",
    "machine_for",
    "predict_spec",
    "predicted_time",
    "rank_candidates",
    "ServiceReply",
    "ServiceStats",
    "SimulationService",
    "remote_burst",
    "remote_query",
    "remote_stats",
]
