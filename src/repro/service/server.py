"""Async batched serving of simulation queries (single-flight, two tiers).

:class:`SimulationService` is the asyncio front-end of the result cache:

* **warm path** — a query whose canonical key is already in the cache (or
  the runner's in-process memo) answers immediately, without leaving the
  event loop;
* **single-flight** — identical queries arriving while one simulation of
  that key is in flight *join* the pending future instead of starting a
  duplicate simulation, so a thundering herd of N equal queries runs
  exactly one simulation;
* **batched cold misses** — distinct cold keys arriving within one batch
  window are dispatched together to the runner (whose ``prefetch()``
  machinery simulates them in parallel worker processes when ``jobs > 1``),
  amortising process-pool start-up over the batch.

Simulations run on a worker thread (one batch at a time — the runner is not
thread-safe), so the event loop keeps accepting, deduplicating and
answering queries while a batch computes.

The same object also speaks a line-oriented JSON protocol over TCP
(:meth:`SimulationService.serve`): one request object per line —
``{"op": "query", "config": {...}}``, ``{"op": "stats"}`` or
``{"op": "ping"}`` — one response object per line.  ``python -m repro
serve`` runs it; ``python -m repro query --connect host:port`` and the
:func:`remote_query`/:func:`remote_burst` helpers are the client side.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError, ReproError, ServiceUnavailableError
from repro.experiments.runner import ExperimentPoint, ExperimentRunner, PointSpec
from repro.obs.metrics import ServiceMetrics
from repro.service.cache import ResultCache, point_to_payload
from repro.service.keys import canonical_spec, config_key, spec_from_config

__all__ = [
    "ServiceReply",
    "ServiceStats",
    "SimulationService",
    "remote_burst",
    "remote_query",
    "remote_stats",
]

#: Where a query's answer came from, in decreasing order of warmth.
SOURCES = ("memory", "disk", "single-flight", "simulated")


@dataclass
class ServiceStats:
    """Counters of one service instance (exported by the ``stats`` op)."""

    queries: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    single_flight_joins: int = 0
    simulations: int = 0
    batches: int = 0
    largest_batch: int = 0
    #: Batched specs whose simulation raised (siblings were unaffected).
    failed_simulations: int = 0

    def count(self, source: str) -> None:
        """Record where one answered query came from."""
        self.queries += 1
        if source == "memory":
            self.memory_hits += 1
        elif source == "disk":
            self.disk_hits += 1
        elif source == "single-flight":
            self.single_flight_joins += 1

    def as_dict(self) -> dict[str, int]:
        """Flat dictionary for the ``stats`` protocol reply."""
        return {
            "queries": self.queries,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "single_flight_joins": self.single_flight_joins,
            "simulations": self.simulations,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "failed_simulations": self.failed_simulations,
        }


@dataclass(frozen=True)
class ServiceReply:
    """One answered query: the result plus its provenance."""

    point: ExperimentPoint = field(compare=False)
    source: str  # one of SOURCES
    key: str

    def as_dict(self) -> dict:
        """JSON-serialisable protocol reply."""
        payload = point_to_payload(self.point)
        return {
            "ok": True,
            "source": self.source,
            "key": self.key,
            "config": payload["spec"],
            "gflops": self.point.gflops,
            "time_s": self.point.time_s,
            "critical_path_s": self.point.critical_path_s,
            "total_messages": self.point.total_messages,
            "inter_cluster_messages": self.point.inter_cluster_messages,
        }


class SimulationService:
    """Asyncio front-end over one :class:`ExperimentRunner` and its cache.

    Parameters
    ----------
    runner:
        The runner that simulates cold misses; its ``store`` (when set) is
        the shared persistent cache, and its ``jobs`` setting decides how
        many worker processes a cold batch fans out over.
    batch_window_s:
        How long the dispatcher waits after the first cold miss for more
        misses to share the batch.  Zero still batches whatever arrives in
        the same event-loop turn.
    """

    def __init__(
        self, runner: ExperimentRunner | None = None, *, batch_window_s: float = 0.005
    ) -> None:
        if batch_window_s < 0:
            raise ConfigurationError(
                f"batch_window_s must be >= 0, got {batch_window_s}"
            )
        self.runner = runner or ExperimentRunner(store=ResultCache())
        self.batch_window_s = batch_window_s
        self.stats = ServiceStats()
        #: Wall-clock histograms (request latency per op, queue depth, batch
        #: size); observed on the event loop only — single-writer, no lock.
        self.metrics = ServiceMetrics()
        self._inflight: dict[str, asyncio.Future] = {}
        self._pending: list[tuple[str, PointSpec, asyncio.Future]] = []
        self._flusher: asyncio.Task | None = None
        # One batch simulates at a time: the runner (platform caches, engine
        # globals) is not thread-safe, and the simulations are CPU-bound
        # anyway — concurrency lives at the prefetch process level.
        self._sim_lock = asyncio.Lock()

    @property
    def cache(self) -> ResultCache | None:
        """The persistent result cache (the runner's store), if any."""
        return self.runner.store

    # ----------------------------------------------------------- the query
    async def submit(
        self, config: Mapping[str, object] | PointSpec
    ) -> ServiceReply:
        """Answer one query: warm levels, join-in-flight, or batched cold miss."""
        spec = config if isinstance(config, PointSpec) else spec_from_config(config)
        spec = canonical_spec(spec)
        key = config_key(spec, self.runner.settings)
        reply = self._warm_reply(spec, key)
        if reply is None and key in self._inflight:
            point = await asyncio.shield(self._inflight[key])
            reply = ServiceReply(point=point, source="single-flight", key=key)
        if reply is None:
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            self._pending.append((key, spec, future))
            self.metrics.observe_queue_depth(len(self._pending))
            if self._flusher is None or self._flusher.done():
                self._flusher = asyncio.ensure_future(self._flush_soon())
            point = await asyncio.shield(future)
            reply = ServiceReply(point=point, source="simulated", key=key)
        self.stats.count(reply.source)
        return reply

    def _warm_reply(self, spec: PointSpec, key: str) -> ServiceReply | None:
        """Cache/memo lookup without ever simulating on the event loop."""
        memo = self.runner.memoised(spec)
        if memo is not None:
            return ServiceReply(point=memo, source="memory", key=key)
        cache = self.cache
        if cache is None:
            return None
        point, source = cache.lookup(key)
        if point is None:
            return None
        self.runner.remember(spec, point)
        return ServiceReply(point=point, source=source, key=key)

    # ------------------------------------------------------ batch dispatch
    async def _flush_soon(self) -> None:
        if self.batch_window_s > 0:
            await asyncio.sleep(self.batch_window_s)
        while self._pending:
            batch, self._pending = self._pending, []
            self.stats.batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            self.metrics.observe_batch(len(batch))
            specs = [spec for _, spec, _ in batch]
            try:
                async with self._sim_lock:
                    outcomes = await asyncio.get_running_loop().run_in_executor(
                        None, self._simulate_batch, specs
                    )
            except BaseException as exc:
                # Catastrophic dispatch failure (executor gone, cancellation):
                # the whole batch is lost.  Per-spec simulation errors never
                # land here — _simulate_batch turns them into outcomes.
                for key, _, future in batch:
                    self._inflight.pop(key, None)
                    if not future.done():
                        future.set_exception(
                            exc if isinstance(exc, ReproError) else
                            ReproError(f"simulation batch failed: {exc!r}")
                        )
                if isinstance(exc, asyncio.CancelledError):
                    raise
                continue
            for (key, _, future), (point, error) in zip(batch, outcomes):
                self._inflight.pop(key, None)
                if error is None:
                    self.stats.simulations += 1
                else:
                    self.stats.failed_simulations += 1
                if future.done():
                    continue
                if error is None:
                    future.set_result(point)
                else:
                    future.set_exception(error)

    def _simulate_batch(
        self, specs: Sequence[PointSpec]
    ) -> list[tuple[ExperimentPoint | None, ReproError | None]]:
        """Worker-thread body: prefetch (parallel when jobs>1), then collect.

        Failures are isolated per spec: one configuration whose simulation
        raises yields an error *outcome* for its own key only — its batch
        mates still get their results.  A failing prefetch (one bad spec can
        sink a parallel worker pool) degrades to the serial per-spec loop
        below, which re-raises precisely for the guilty spec.
        """
        try:
            self.runner.prefetch(specs)
        except Exception:
            pass  # the per-spec loop pins the error on the spec that owns it
        outcomes: list[tuple[ExperimentPoint | None, ReproError | None]] = []
        for spec in specs:
            try:
                outcomes.append((self.runner.run_point(spec), None))
            except ReproError as exc:
                outcomes.append((None, exc))
            except Exception as exc:
                outcomes.append((None, ReproError(f"simulation failed: {exc!r}")))
        return outcomes

    # -------------------------------------------------------- TCP protocol
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client: JSON-lines requests in, JSON-lines replies out."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    reply = await self._handle_request(json.loads(line))
                except ReproError as exc:
                    reply = {"ok": False, "error": str(exc)}
                except (json.JSONDecodeError, TypeError, KeyError) as exc:
                    reply = {"ok": False, "error": f"malformed request: {exc!r}"}
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, request: dict) -> dict:
        op = request.get("op", "query")
        started = time.perf_counter()
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                stats = self.stats.as_dict()
                stats["runner_simulations"] = self.runner.simulations_run
                if self.cache is not None:
                    stats["cache"] = self.cache.stats.as_dict()
                # Additive extension: the pinned top-level keys are untouched,
                # clients that predate the metrics simply ignore the nest.
                stats["metrics"] = self.metrics.as_dict()
                return {"ok": True, "stats": stats}
            if op == "query":
                reply = await self.submit(request["config"])
                return reply.as_dict()
            return {"ok": False, "error": f"unknown op {op!r}"}
        finally:
            self.metrics.observe_request(op, time.perf_counter() - started)
            self.metrics.maybe_log({"queries": self.stats.queries})

    async def serve(self, host: str = "127.0.0.1", port: int = 8642):
        """Start the TCP listener and return the asyncio server object."""
        return await asyncio.start_server(self.handle_connection, host, port)


# ---------------------------------------------------------------------------
# Client helpers (synchronous; used by ``repro query`` and the CI smoke)
# ---------------------------------------------------------------------------

#: Client-side resilience defaults: total attempts = 1 + DEFAULT_RETRIES,
#: every connect *and* read bounded by the timeout, exponential backoff
#: (doubling from BACKOFF_BASE_S) between attempts.  Queries are pure cache
#: lookups/simulations — idempotent — so retrying a torn request is safe.
DEFAULT_RETRIES = 2
DEFAULT_TIMEOUT_S = 10.0
BACKOFF_BASE_S = 0.05

#: Transport failures worth retrying: the server was down, restarting, or
#: dropped the connection mid-request.  A ``ReproError`` reply is *not* in
#: this set — the server answered, retrying would re-ask the same question.
_RETRYABLE = (ConnectionError, OSError, asyncio.TimeoutError, EOFError)


async def _attempt(host: str, port: int, request: dict, timeout_s: float) -> dict:
    """One request/reply exchange; every await is bounded by the timeout."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout_s
    )
    try:
        writer.write(json.dumps(request).encode() + b"\n")
        await asyncio.wait_for(writer.drain(), timeout_s)
        line = await asyncio.wait_for(reader.readline(), timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if not line:
        raise EOFError(f"server at {host}:{port} closed the connection")
    return json.loads(line)


async def _roundtrip(
    host: str,
    port: int,
    requests: Sequence[dict],
    *,
    concurrent: bool,
    retries: int = DEFAULT_RETRIES,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> list[dict]:
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout_s <= 0:
        raise ConfigurationError(f"timeout must be > 0 seconds, got {timeout_s}")

    async def _one(request: dict) -> dict:
        delay = BACKOFF_BASE_S
        last: Exception | None = None
        for attempt in range(retries + 1):
            try:
                return await _attempt(host, port, request, timeout_s)
            except _RETRYABLE as exc:
                last = exc
                if attempt < retries:
                    await asyncio.sleep(delay)
                    delay *= 2.0
        raise ServiceUnavailableError(
            f"server at {host}:{port} unreachable after {retries + 1} "
            f"attempt(s) (timeout {timeout_s}s per attempt): {last!r}"
        )

    if concurrent:
        return list(await asyncio.gather(*(_one(r) for r in requests)))
    return [await _one(r) for r in requests]


def remote_query(
    host: str,
    port: int,
    config: Mapping[str, object],
    *,
    retries: int = DEFAULT_RETRIES,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> dict:
    """Send one query to a running server and return its reply dict."""
    return asyncio.run(
        _roundtrip(host, port, [{"op": "query", "config": dict(config)}],
                   concurrent=False, retries=retries, timeout_s=timeout_s)
    )[0]


def remote_burst(
    host: str,
    port: int,
    config: Mapping[str, object],
    n: int,
    *,
    retries: int = DEFAULT_RETRIES,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> list[dict]:
    """Send ``n`` identical queries concurrently (the single-flight probe).

    All ``n`` connections are opened and their requests written before any
    reply is awaited, so a cold key exercises the server's single-flight
    deduplication: the replies report 1 ``simulated`` source and ``n - 1``
    ``single-flight`` joins.  Each of the ``n`` streams retries its own
    transport failures independently.
    """
    if n < 1:
        raise ConfigurationError(f"burst size must be >= 1, got {n}")
    request = {"op": "query", "config": dict(config)}
    return asyncio.run(
        _roundtrip(host, port, [request] * n, concurrent=True,
                   retries=retries, timeout_s=timeout_s)
    )


def remote_stats(
    host: str,
    port: int,
    *,
    retries: int = DEFAULT_RETRIES,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> dict:
    """Fetch the server's counters (queries, dedup joins, cache hits)."""
    return asyncio.run(
        _roundtrip(host, port, [{"op": "stats"}], concurrent=False,
                   retries=retries, timeout_s=timeout_s)
    )[0]
