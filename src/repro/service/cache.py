"""Two-level result cache: in-memory LRU over an on-disk content store.

The front level is a bounded LRU of deserialised :class:`ExperimentPoint`
objects — warm queries inside one process answer in microseconds without
touching the filesystem.  The back level is a content-addressed JSON store
under ``results/cache/`` (``<key[:2]>/<key>.json``, git-style fan-out), so
results survive across CLI invocations and are shared by every worker
process on the machine.  Writes go through a temp-file + ``os.replace``
rename, which is atomic on POSIX: a concurrent reader sees either the old
file or the complete new one, never a torn write.

Entries carry the engine-semantics version tag of
:mod:`repro.service.keys`; a stored payload whose tag differs from the
running code's is treated as a miss (and the fresh result overwrites it), so
bumping the tag is the entire cache-invalidation protocol.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import ExperimentPoint, PointSpec
from repro.gridsim.trace import TraceSummary
from repro.obs.stats import HotSpot
from repro.service.keys import ENGINE_SEMANTICS_VERSION, canonical_spec, config_key

__all__ = ["CacheStats", "ResultCache", "default_cache_root"]


def default_cache_root() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``results/cache``."""
    return Path(os.environ.get("REPRO_CACHE_DIR") or Path("results") / "cache")


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Stored payloads rejected for carrying a stale engine-semantics tag.
    stale_entries: int = 0
    #: Unparseable on-disk entries quarantined as ``*.corrupt`` files.
    corrupt_entries: int = 0

    @property
    def hits(self) -> int:
        """Total warm answers (either level)."""
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict[str, int]:
        """Flat dictionary for JSON reports."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "stale_entries": self.stale_entries,
            "corrupt_entries": self.corrupt_entries,
        }


# ---------------------------------------------------------------------------
# (De)serialisation of one evaluation point
# ---------------------------------------------------------------------------

_SPEC_FIELDS = (
    "algorithm", "m", "n", "n_sites", "domains_per_cluster", "tree_kind",
    "want_q", "tile_size", "runtime", "placement", "priority", "failures",
)
_TUPLE_FIELDS = ("busy_s_per_rank", "comm_wait_s_per_rank")


def point_to_payload(point: ExperimentPoint) -> dict:
    """JSON-serialisable form of one :class:`ExperimentPoint`."""
    trace = point.trace
    return {
        "engine_semantics": ENGINE_SEMANTICS_VERSION,
        "spec": {f: getattr(point.spec, f) for f in _SPEC_FIELDS},
        "gflops": point.gflops,
        "time_s": point.time_s,
        "critical_path_s": point.critical_path_s,
        "recovery": point.recovery,
        "trace": {
            "n_messages": trace.n_messages,
            "bytes_by_link": trace.bytes_by_link,
            "messages_per_rank_max": trace.messages_per_rank_max,
            "inter_cluster_messages_per_rank_max": trace.inter_cluster_messages_per_rank_max,
            "total_flops": trace.total_flops,
            "flops_per_rank_max": trace.flops_per_rank_max,
            "flops_by_kernel": trace.flops_by_kernel,
            "flop_events": trace.flop_events,
            "busy_s_per_rank": list(trace.busy_s_per_rank),
            "comm_wait_s_per_rank": list(trace.comm_wait_s_per_rank),
            # Top-K contention sites (small and JSON-safe) ride along so
            # `figure --id trace-hotspots` works on warm cache entries; the
            # full streaming snapshot (histograms, timelines) is deliberately
            # not serialised — exports that need it force a live simulation.
            "hot_spots": [
                [h.link, h.source, h.dest, h.wait_s, h.messages, h.nbytes]
                for h in trace.hot_spots
            ],
        },
    }


def point_from_payload(payload: dict) -> ExperimentPoint:
    """Rebuild an :class:`ExperimentPoint` stored by :func:`point_to_payload`."""
    trace_fields = dict(payload["trace"])
    for name in _TUPLE_FIELDS:
        trace_fields[name] = tuple(trace_fields.get(name, ()))
    trace_fields["hot_spots"] = tuple(
        HotSpot(link, source, dest, wait_s, messages, nbytes)
        for link, source, dest, wait_s, messages, nbytes in trace_fields.get(
            "hot_spots", ()
        )
    )
    return ExperimentPoint(
        spec=PointSpec(**payload["spec"]),
        gflops=payload["gflops"],
        time_s=payload["time_s"],
        trace=TraceSummary(**trace_fields),
        critical_path_s=payload.get("critical_path_s"),
        recovery=payload.get("recovery"),
    )


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------

class ResultCache:
    """LRU-fronted content-addressed store of simulation results.

    Parameters
    ----------
    root:
        Directory of the on-disk level (created on first write).  ``None``
        selects :func:`default_cache_root`.
    memory_entries:
        Capacity of the in-memory LRU front.  ``0`` disables the front level
        entirely (every hit is a disk hit) — used by tests.
    """

    def __init__(
        self, root: str | Path | None = None, *, memory_entries: int = 256
    ) -> None:
        if memory_entries < 0:
            raise ConfigurationError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        self.root = Path(root) if root is not None else default_cache_root()
        self.memory_entries = memory_entries
        self._memory: OrderedDict[str, ExperimentPoint] = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ keys
    def key_for(
        self, spec: PointSpec, settings: Grid5000Settings | None = None
    ) -> str:
        """Content hash of one spec on one platform (see :mod:`.keys`)."""
        return config_key(spec, settings)

    def path_for(self, key: str) -> Path:
        """On-disk location of one entry (git-style two-character fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    # ---------------------------------------------------------------- lookup
    def lookup(self, key: str) -> tuple[ExperimentPoint | None, str]:
        """Warm result and its provenance: ``(point, "memory"|"disk")`` or
        ``(None, "miss")``.  Disk hits are promoted into the memory front."""
        point = self._memory.get(key)
        if point is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return point, "memory"
        payload = self._read_payload(key)
        if payload is None:
            self.stats.misses += 1
            return None, "miss"
        point = point_from_payload(payload)
        self._remember(key, point)
        self.stats.disk_hits += 1
        return point, "disk"

    def get(self, key: str) -> ExperimentPoint | None:
        """Warm result for ``key``, or None (see :meth:`lookup`)."""
        return self.lookup(key)[0]

    def contains(self, key: str) -> bool:
        """True when ``key`` would answer warm (no counters touched)."""
        if key in self._memory:
            return True
        return self._read_payload(key) is not None

    def _read_payload(self, key: str) -> dict | None:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None  # absent (or unreadable): a plain miss
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except ValueError:
            # Corrupt entry (torn write survived a crash, disk damage,
            # manual editing): quarantine it for post-mortem inspection and
            # answer "miss" — a broken file must never take the service down,
            # and must never be retried on every lookup either.
            self._quarantine(path)
            self.stats.corrupt_entries += 1
            return None
        if payload.get("engine_semantics") != ENGINE_SEMANTICS_VERSION:
            self.stats.stale_entries += 1
            return None
        return payload

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt entry aside as ``<name>.corrupt`` (best effort)."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass  # raced with a concurrent writer/quarantine: nothing to do

    # ----------------------------------------------------------------- store
    def put(self, key: str, point: ExperimentPoint) -> None:
        """Store one result at both levels (atomic on-disk replace)."""
        self._remember(key, point)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = point_to_payload(point)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def _remember(self, key: str, point: ExperimentPoint) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = point
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------- household
    def clear_memory(self) -> None:
        """Drop the LRU front (the disk level is untouched)."""
        self._memory.clear()

    def __len__(self) -> int:
        """Number of entries currently held in the memory front."""
        return len(self._memory)

    # Convenience wrapper joining key computation and lookup/store, used by
    # the runner so its store integration stays two lines per path.
    def get_spec(
        self, spec: PointSpec, settings: Grid5000Settings | None = None
    ) -> ExperimentPoint | None:
        """Warm result for a spec (canonicalised key computed here)."""
        return self.get(self.key_for(spec, settings))

    def put_spec(
        self,
        spec: PointSpec,
        point: ExperimentPoint,
        settings: Grid5000Settings | None = None,
    ) -> None:
        """Store a result under its spec's canonical key.

        The stored spec is the *canonical* one, so a later hit returns the
        effective configuration (policy defaults filled) regardless of how
        the original query spelt it.
        """
        if point.spec != canonical_spec(point.spec):
            point = ExperimentPoint(
                spec=canonical_spec(point.spec),
                gflops=point.gflops,
                time_s=point.time_s,
                trace=point.trace,
                critical_path_s=point.critical_path_s,
                recovery=point.recovery,
            )
        self.put(self.key_for(spec, settings), point)
