"""Canonical configuration keys: one stable content hash per simulation.

The service tier answers "has this exact simulation run before?" across
processes and CLI invocations, so the cache key must be a *pure function of
the simulation semantics* — never of incidental representation.  Three
invariances are required (and property-tested):

* **dict-order invariance** — a query arriving as JSON hashes the same
  whatever order its fields were written in;
* **default-filling invariance** — omitting a field and passing its default
  explicitly are the same configuration (``placement=None`` and
  ``placement="block"`` run the identical DAG schedule, so they share a key);
* **irrelevant-field invariance** — fields an algorithm never reads do not
  enter its key (a ScaLAPACK point is the same simulation whatever
  ``tree_kind`` says), while two *different* algorithms or shapes can never
  collide because the algorithm name and every consumed field are hashed.

The key also folds in everything else the result depends on: the platform
settings (reservation size, link overheads, kernel-efficiency curve) and the
**engine-semantics version tag** :data:`ENGINE_SEMANTICS_VERSION`.  The tag
is the cache-invalidation story: whenever a PR changes what the engine would
measure for the same config (cost charging, trace conventions, scheduling
order), the tag is bumped and every previously stored result silently
becomes a miss — no manual cache flush, no stale answers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Mapping

from repro.exceptions import ConfigurationError
from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import PointSpec

__all__ = [
    "ENGINE_SEMANTICS_VERSION",
    "canonical_config",
    "canonical_spec",
    "config_key",
    "spec_from_config",
]

#: Version tag of the simulation engine's *observable semantics*.  Bump this
#: whenever a change makes the engine produce different numbers for the same
#: configuration (new cost charging, different schedule decision rule, trace
#: accounting changes): every result stored under the old tag then stops
#: matching and is re-simulated on next request.
ENGINE_SEMANTICS_VERSION = "pr10-streaming-obs.1"

#: Effective policy defaults the runner applies to DAG points (run_point
#: passes these when the spec leaves the fields as None).
_DAG_PLACEMENT_DEFAULT = "block"
_DAG_PRIORITY_DEFAULT = "critical-path"

#: PointSpec field names accepted in a query config, plus CLI-style aliases.
_FIELD_ALIASES = {
    "rows": "m",
    "cols": "n",
    "sites": "n_sites",
    "panel_tree": "tree_kind",
}
_SPEC_FIELDS = (
    "algorithm", "m", "n", "n_sites", "domains_per_cluster", "tree_kind",
    "want_q", "tile_size", "runtime", "placement", "priority", "failures",
)


def spec_from_config(config: Mapping[str, object]) -> PointSpec:
    """Build a validated :class:`PointSpec` from a plain query dictionary.

    Accepts the spec's own field names plus the CLI aliases (``rows``,
    ``cols``, ``sites``, ``panel_tree``); unknown fields are rejected so a
    typo can never silently select a default simulation.
    """
    fields: dict[str, object] = {}
    for raw_key, value in config.items():
        key = _FIELD_ALIASES.get(raw_key, raw_key)
        if key not in _SPEC_FIELDS:
            raise ConfigurationError(
                f"unknown config field {raw_key!r}; expected one of "
                f"{sorted(set(_SPEC_FIELDS) | set(_FIELD_ALIASES))}"
            )
        if key in fields:
            raise ConfigurationError(
                f"config field {key!r} given twice (alias collision)"
            )
        fields[key] = value
    # Cholesky/LU only exist on the DAG runtime; fill it so plain query
    # dictionaries do not have to know the runner's validation rules.
    if fields.get("algorithm") in PointSpec._DAG_ONLY:
        fields.setdefault("runtime", "dag")
    if fields.get("algorithm") == "cholesky" and "m" not in fields and "n" in fields:
        fields["m"] = fields["n"]  # square by definition
    return PointSpec(**fields)


def canonical_spec(spec: PointSpec) -> PointSpec:
    """Normalise a spec to its effective-semantics form.

    Fills the policy defaults the runner would apply (``placement=None`` on a
    DAG point *is* ``"block"``) and resets every field the algorithm never
    reads to the constructor default, so two specs that run the identical
    simulation compare — and hash — equal.
    """
    fields = {f: getattr(spec, f) for f in _SPEC_FIELDS}
    if spec.runtime == "dag":
        fields["placement"] = spec.placement or _DAG_PLACEMENT_DEFAULT
        fields["priority"] = spec.priority or _DAG_PRIORITY_DEFAULT
    if spec.algorithm != "tsqr":
        fields["domains_per_cluster"] = None  # only TSQR groups domains
    if spec.algorithm == "scalapack":
        fields["tree_kind"] = "grid-hierarchical"  # never consumed
    if spec.algorithm in PointSpec._DAG_ONLY:
        fields["tree_kind"] = "grid-hierarchical"  # no panel reduction tree
    return PointSpec(**fields)


def canonical_config(
    spec: PointSpec | Mapping[str, object],
    settings: Grid5000Settings | None = None,
) -> dict[str, object]:
    """The fully-canonicalised content of a simulation configuration.

    A flat dictionary of every input the simulation result depends on: the
    normalised :class:`PointSpec` fields, the complete platform settings
    (nested :class:`KernelEfficiency` included) and the engine-semantics
    version tag.  Serialising this with sorted keys gives the byte stream
    the content hash is computed over.
    """
    if not isinstance(spec, PointSpec):
        spec = spec_from_config(spec)
    spec = canonical_spec(spec)
    settings = settings or Grid5000Settings()
    config: dict[str, object] = {f: getattr(spec, f) for f in _SPEC_FIELDS}
    config["platform"] = asdict(settings)
    config["engine_semantics"] = ENGINE_SEMANTICS_VERSION
    return config


def config_key(
    spec: PointSpec | Mapping[str, object],
    settings: Grid5000Settings | None = None,
) -> str:
    """Stable content hash (SHA-256 hex) of one simulation configuration."""
    canonical = canonical_config(spec, settings)
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()
