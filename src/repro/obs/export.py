"""Structured exports of streaming trace statistics.

Emitters here are fed purely from :class:`~repro.obs.stats.TraceStats`
snapshots — the fixed-memory windows maintained online — so a full
utilisation timeline of a 2048+-rank run can be exported without ever
having retained an event list (``record_messages`` stays off).

Formats:

* :func:`write_perfetto_trace` — Chrome trace-event JSON (the ``[catapult]``
  flavour Perfetto and ``chrome://tracing`` both load).  Each rank becomes a
  thread track; every timeline window with activity contributes a ``busy``
  slice followed by a ``comm-wait`` slice, which renders as a Gantt-like
  utilisation view.  Hot spots and histogram quantiles ride along in
  ``otherData``.
* :func:`write_timeline_csv` — the raw windows, one row per
  ``(rank, window)``.
* :func:`write_hotspots_csv` — the top-K contention sites.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.obs.stats import TraceStats

__all__ = [
    "resolve_stats",
    "write_hotspots_csv",
    "write_perfetto_trace",
    "write_timeline_csv",
]


def resolve_stats(source) -> TraceStats:
    """Accept a :class:`TraceStats` or anything with a ``.stats`` attribute.

    ``TraceSummary`` (and ``ExperimentPoint.trace``) carry their snapshot in
    ``.stats``; summaries rebuilt from the persistent cache have ``None``
    there, which is an error for export — the caller must re-simulate.
    """
    if isinstance(source, TraceStats):
        return source
    stats = getattr(source, "stats", None)
    if isinstance(stats, TraceStats):
        return stats
    raise ValueError(
        "no streaming statistics attached: trace exports need a live "
        "simulation (cached summaries carry only the top-K hot spots)"
    )


def write_perfetto_trace(path: str | Path, source, *, title: str = "repro-sim") -> Path:
    """Write a Chrome trace-event JSON file of the windowed timelines."""
    stats = resolve_stats(source)
    window_us = stats.window_s * 1e6
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": title},
        }
    ]
    ranks = sorted(set(stats.busy_timeline) | set(stats.wait_timeline))
    for rank in ranks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        busy = stats.busy_timeline.get(rank, ())
        wait = stats.wait_timeline.get(rank, ())
        n = max(len(busy), len(wait))
        for i in range(n):
            start_us = i * window_us
            busy_s = busy[i] if i < len(busy) else 0.0
            wait_s = wait[i] if i < len(wait) else 0.0
            if busy_s > 0.0:
                events.append(
                    {
                        "name": "busy",
                        "cat": "compute",
                        "ph": "X",
                        "pid": 0,
                        "tid": rank,
                        "ts": start_us,
                        "dur": min(busy_s, stats.window_s) * 1e6,
                        "args": {
                            "busy_s": busy_s,
                            "utilization": busy_s / stats.window_s,
                        },
                    }
                )
            if wait_s > 0.0:
                events.append(
                    {
                        "name": "comm-wait",
                        "cat": "comm",
                        "ph": "X",
                        "pid": 0,
                        "tid": rank,
                        "ts": start_us + min(busy_s, stats.window_s) * 1e6,
                        "dur": min(wait_s, stats.window_s) * 1e6,
                        "args": {"wait_s": wait_s},
                    }
                )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "title": title,
            "n_ranks": stats.n_ranks,
            "horizon_s": stats.horizon_s,
            "window_s": stats.window_s,
            "hot_spots": [h.as_dict() for h in stats.hot_spots],
            "latency_by_link": {
                k: v.as_dict() for k, v in stats.latency_by_link.items()
            },
            "link_traffic": stats.link_traffic,
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def write_timeline_csv(path: str | Path, source) -> Path:
    """Write one row per (rank, window) with busy/wait/received-bytes columns."""
    stats = resolve_stats(source)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ranks = sorted(
        set(stats.busy_timeline)
        | set(stats.wait_timeline)
        | set(stats.recv_bytes_timeline)
    )
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["rank", "window", "t_start_s", "t_end_s", "busy_s", "comm_wait_s", "recv_bytes"]
        )
        w = stats.window_s
        for rank in ranks:
            busy = stats.busy_timeline.get(rank, ())
            wait = stats.wait_timeline.get(rank, ())
            nbytes = stats.recv_bytes_timeline.get(rank, ())
            for i in range(max(len(busy), len(wait), len(nbytes))):
                busy_s = busy[i] if i < len(busy) else 0.0
                wait_s = wait[i] if i < len(wait) else 0.0
                recv = nbytes[i] if i < len(nbytes) else 0
                if busy_s == 0.0 and wait_s == 0.0 and recv == 0:
                    continue
                writer.writerow(
                    [rank, i, repr(i * w), repr((i + 1) * w), repr(busy_s), repr(wait_s), recv]
                )
    return path


def write_hotspots_csv(path: str | Path, hot_spots) -> Path:
    """Write the top-K contention sites (``HotSpot`` sequence) as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["rank", "link", "source", "dest", "wait_s", "messages", "nbytes"])
        for i, spot in enumerate(hot_spots, 1):
            writer.writerow(
                [i, spot.link, spot.source, spot.dest, repr(spot.wait_s),
                 spot.messages, spot.nbytes]
            )
    return path
