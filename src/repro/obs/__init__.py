"""Streaming observability: fixed-memory statistics for simulations at scale.

This package is the always-on alternative to ``record_messages=True``: the
trace layer feeds :class:`~repro.obs.stats.StreamingTraceStats` inline from
its single-writer hot path, so latency/size percentiles, per-rank busy/wait
timelines and contention hot spots are available for *every* run — including
4096+-rank sweeps where retaining event tuples is unaffordable — in memory
bounded by O(ranks x windows + histogram buckets), independent of event
count.

Sub-modules:

* :mod:`repro.obs.stats` — log-bucketed histograms, hot-spot accounting,
  the :class:`~repro.obs.stats.TraceStats` snapshot, and the event-replay
  recomputation used by the equivalence tests.
* :mod:`repro.obs.timeline` — width-doubling windowed timelines.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON and CSV emitters.
* :mod:`repro.obs.metrics` — wall-clock service-tier metrics.
"""

from repro.obs.export import (
    write_hotspots_csv,
    write_perfetto_trace,
    write_timeline_csv,
)
from repro.obs.metrics import ServiceMetrics
from repro.obs.stats import (
    COLLECTIVE_TAGS,
    HistogramSummary,
    HotSpot,
    LogHistogram,
    StreamingTraceStats,
    TraceStats,
    stats_from_events,
)
from repro.obs.timeline import WindowedTimeline

__all__ = [
    "COLLECTIVE_TAGS",
    "HistogramSummary",
    "HotSpot",
    "LogHistogram",
    "ServiceMetrics",
    "StreamingTraceStats",
    "TraceStats",
    "WindowedTimeline",
    "stats_from_events",
    "write_hotspots_csv",
    "write_perfetto_trace",
    "write_timeline_csv",
]
