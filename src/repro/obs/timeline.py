"""Fixed-memory virtual-time timelines with width-doubling windows.

A :class:`WindowedTimeline` keeps, for every rank that shows activity, a
fixed number of accumulation windows for three series — busy seconds, p2p
wait seconds and received bytes.  The run's makespan is unknown until the
end, so instead of guessing a window width each rank's row starts at the
smallest power-of-two multiple of ``base_s`` whose window range covers the
rank's *first* event, and doubles (rebinning the series) whenever a later
event lands past the last window.  Memory is therefore
O(active ranks x n_windows) regardless of makespan, and a 2048-rank run
costs a few megabytes.

**Determinism.**  An event at virtual time ``t`` is attributed wholly to
the window containing ``t`` (no proportional span splitting).  Widths are
exact powers of two times ``base_s``, so ``int(t / (w * 2**k)) ==
int(t / w) >> k`` exactly in floating point — an event's final window under
any sequence of doublings is identical to binning it directly at the final
width, which is why :meth:`snapshot` can normalise every rank to one
global width.  Rebinning on growth is a single pass (``new[j >> k] +=
old[j]``), and since the seed width and every doubling are pure functions
of the event sequence, two runs with the same event order produce
bit-identical timelines whatever the backend; the received-bytes series
additionally uses exact integer arithmetic, making it reproducible even
from an event replay whose rebin history differs (no busy events to drive
the widths).

The per-rank series live in ``array`` buffers (machine doubles / int64),
not Python lists, to keep the per-rank footprint near 2 KB.  Seeding at
the first event's width (rather than always at ``base_s``) is what keeps
the rebin work off the hot path: a rank typically rebins zero or one time
over a whole run, which the benchmark overhead gate relies on.
"""

from __future__ import annotations

from array import array
from math import frexp

import numpy as np

__all__ = ["WindowedTimeline"]

# Row layout: [window width, busy array('d'), wait array('d'), bytes array('q')]
_WIDTH, _BUSY, _WAIT, _BYTES = 0, 1, 2, 3


class WindowedTimeline:
    """Per-rank windowed accumulator for busy / wait / received-bytes series."""

    __slots__ = ("n_ranks", "n_windows", "base_s", "_rows", "_zeros")

    def __init__(self, n_ranks: int, *, n_windows: int = 64, base_s: float = 1e-6):
        if n_windows < 2 or n_windows & (n_windows - 1):
            raise ValueError(f"n_windows must be a power of two >= 2: {n_windows}")
        self.n_ranks = n_ranks
        self.n_windows = n_windows
        self.base_s = base_s
        #: rank -> [width, busy, wait, bytes]; allocated on first activity.
        self._rows: dict[int, list] = {}
        self._zeros = bytes(8 * n_windows)

    # ------------------------------------------------------------ hot path
    # NOTE: StreamingTraceStats inlines the add_* window binning against
    # _rows/_seed/_grow directly (one row lookup serves bytes and wait for
    # the same message) — keep the row layout and grow protocol in sync.
    def _seed(self, rank: int, t: float) -> list:
        """Allocate a row whose window range already covers time ``t``."""
        n = self.n_windows
        width = self.base_s
        limit = n * width
        if t >= limit:
            # Smallest power-of-two factor with t < limit * 2**k; rounding in
            # the division can only mis-size by one step, which the add-time
            # ``i >= n_windows`` guard absorbs via _grow.
            width *= 2.0 ** frexp(t / limit)[1]
        zeros = self._zeros
        row = self._rows[rank] = [
            width,
            array("d", zeros),
            array("d", zeros),
            array("q", zeros),
        ]
        return row

    def _grow(self, row: list, t: float) -> float:
        """Double the row's window width until ``t`` fits; rebin in one pass."""
        n = self.n_windows
        width = row[_WIDTH]
        shift = 0
        while t >= n * width:
            width *= 2.0
            shift += 1
        for series in (row[_BUSY], row[_WAIT], row[_BYTES]):
            zero = 0 if series.typecode == "q" else 0.0
            # Ascending j guarantees every source index is drained before a
            # later j lands on it as a target (j >> shift < j for j >= 1).
            for j in range(1, n):
                v = series[j]
                if v:
                    series[j >> shift] += v
                    series[j] = zero
        row[_WIDTH] = width
        return width

    def add_busy(self, rank: int, t: float, seconds: float) -> None:
        row = self._rows.get(rank)
        if row is None:
            row = self._seed(rank, t)
        width = row[_WIDTH]
        i = int(t / width)
        if i >= self.n_windows:
            width = self._grow(row, t)
            i = int(t / width)
        row[_BUSY][i] += seconds

    def add_wait(self, rank: int, t: float, seconds: float) -> None:
        row = self._rows.get(rank)
        if row is None:
            row = self._seed(rank, t)
        width = row[_WIDTH]
        i = int(t / width)
        if i >= self.n_windows:
            width = self._grow(row, t)
            i = int(t / width)
        row[_WAIT][i] += seconds

    def add_bytes(self, rank: int, t: float, nbytes: int) -> None:
        row = self._rows.get(rank)
        if row is None:
            row = self._seed(rank, t)
        width = row[_WIDTH]
        i = int(t / width)
        if i >= self.n_windows:
            width = self._grow(row, t)
            i = int(t / width)
        row[_BYTES][i] += nbytes

    # ------------------------------------------------------------ snapshot
    def snapshot_width(self, horizon: float) -> float:
        """Smallest power-of-two multiple of ``base_s`` covering ``horizon``."""
        width = self.base_s
        limit = self.n_windows * width
        while horizon >= limit:
            width *= 2.0
            limit = self.n_windows * width
        return width

    def snapshot(
        self, horizon: float
    ) -> tuple[
        dict[int, tuple[float, ...]],
        dict[int, tuple[float, ...]],
        dict[int, tuple[int, ...]],
    ]:
        """Normalise every rank to the ``horizon`` width; skip all-zero series.

        Returns ``(busy, wait, received bytes)`` as rank-keyed dicts of
        per-window tuples.  Rebinning happens on fresh buffers — the live
        accumulators are untouched, so snapshotting mid-run is safe.  The
        fold is a vectorised ``reshape(-1, 2**shift).sum(axis=1)``; with
        fixed inputs the result is deterministic, and for the integer bytes
        series it is exact under any summation order.
        """
        target = self.snapshot_width(horizon)
        n = self.n_windows
        busy_out: dict[int, tuple[float, ...]] = {}
        wait_out: dict[int, tuple[float, ...]] = {}
        bytes_out: dict[int, tuple[int, ...]] = {}
        # Group rows by their fold shift so each group stacks into one 2-D
        # matrix and folds in a single vectorised pass — thousands of ranks
        # cost a handful of numpy calls, not three per rank.
        by_shift: dict[int, list[int]] = {}
        for rank in sorted(self._rows):
            width = self._rows[rank][_WIDTH]
            shift = 0
            while width < target:
                width *= 2.0
                shift += 1
            by_shift.setdefault(shift, []).append(rank)
        for shift, ranks in by_shift.items():
            for out, idx, dtype in (
                (busy_out, _BUSY, np.float64),
                (wait_out, _WAIT, np.float64),
                (bytes_out, _BYTES, np.int64),
            ):
                blob = b"".join(self._rows[r][idx].tobytes() for r in ranks)
                mat = np.frombuffer(blob, dtype=dtype).reshape(len(ranks), n)
                if shift:
                    span = 1 << shift
                    folded = np.zeros((len(ranks), n), dtype=dtype)
                    if span >= n:
                        folded[:, 0] = mat.sum(axis=1)
                    else:
                        folded[:, : n >> shift] = mat.reshape(
                            len(ranks), -1, span
                        ).sum(axis=2)
                    mat = folded
                mask = mat.any(axis=1)
                n_active = int(mask.sum())
                if n_active == 0:
                    continue
                if n_active < len(ranks):
                    # Boxing a row into Python numbers is the expensive part
                    # of the whole snapshot — do it only for active rows.
                    keep = [r for r, k in zip(ranks, mask.tolist()) if k]
                    rows = mat[mask].tolist()
                else:
                    keep = ranks
                    rows = mat.tolist()
                for rank, values in zip(keep, rows):
                    out[rank] = tuple(values)
        if len(by_shift) > 1:  # restore sorted-rank iteration order
            busy_out = {r: busy_out[r] for r in sorted(busy_out)}
            wait_out = {r: wait_out[r] for r in sorted(wait_out)}
            bytes_out = {r: bytes_out[r] for r in sorted(bytes_out)}
        return busy_out, wait_out, bytes_out
