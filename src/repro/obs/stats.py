"""Streaming trace statistics: fixed-memory observability for simulations.

The trace layer's counters (:class:`~repro.gridsim.trace.TraceSummary`) answer
the paper's Table I/II questions — totals of messages, bytes and flops — but
nothing distributional: no latency percentiles, no per-window utilisation, no
notion of *where* the waiting happened.  Historically those questions required
``record_messages=True`` and a post-hoc pass over millions of event tuples,
which is exactly what large sweeps cannot afford.

This module provides the always-on alternative: :class:`StreamingTraceStats`
is fed inline by the single-writer hot path of
:meth:`~repro.gridsim.trace.Trace.record_message` /
:meth:`~repro.gridsim.trace.Trace.record_flops` and maintains

* **log-bucketed histograms** (factor-of-two buckets) of message latency and
  size per link class and of flop-charge magnitude per kernel — O(log range)
  memory, exact integer bucket counts, p50/p95/p99 read off the CDF;
* **windowed timelines** of per-rank busy seconds, comm-wait seconds and
  received bytes in a fixed number of virtual-time windows whose width doubles
  as the horizon grows (see :mod:`repro.obs.timeline`);
* **contention hot spots**: accumulated wait seconds per
  ``(link class, source, dest)`` site, the top-K of which surface in
  ``TraceSummary.hot_spots``;
* **per-(link, traffic-class) totals** separating collective phases
  (barrier/bcast/reduce/...) from point-to-point traffic.

Everything is a pure *observer*: the statistics never feed back into
scheduling or pricing, so pinned trace hashes are unaffected, and every
structure is bounded — no per-event allocation, no event list.

Determinism: under the cooperative scheduler the record calls arrive in a
single global order that is a pure function of the simulated program, so two
identical runs (on either engine backend, with or without event recording)
produce bit-identical snapshots.  The bucket transforms (``int.bit_length``,
``math.frexp``) and the integer bucket counts are exact; the windowed
timelines fold by exact index halving (see :mod:`repro.obs.timeline`), so the
same guarantee extends to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import frexp

from repro.gridsim.network import LinkClass
from repro.obs.timeline import WindowedTimeline

__all__ = [
    "COLLECTIVE_TAGS",
    "HistogramSummary",
    "HotSpot",
    "LogHistogram",
    "StreamingTraceStats",
    "TraceStats",
    "stats_from_events",
]

#: Tags the communicator's collective edge recorders use; anything else is a
#: point-to-point tag (stringified user tags).
COLLECTIVE_TAGS = frozenset(
    {"barrier", "bcast", "reduce", "allgather", "gather", "scatter"}
)


class LogHistogram:
    """Power-of-two-bucketed histogram with exact integer counts.

    Bucket ``i`` holds values in ``[2**(i-1), 2**i)``; the index is
    ``math.frexp(x)[1]`` for floats and ``x.bit_length()`` for non-negative
    integers (the two agree on common magnitudes).  Buckets live in a plain
    dict keyed by exponent, so any magnitude — including sub-second latencies
    with negative exponents — is representable without clamping.

    The hot path updates :attr:`counts` / :attr:`n` / :attr:`total` directly
    (see :class:`StreamingTraceStats`); :meth:`add` is the convenience entry
    point for cold paths such as the service metrics.
    """

    __slots__ = ("counts", "n", "total")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.n = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        """Record one observation (non-positive values land in bucket 0)."""
        if isinstance(value, int):
            i = value.bit_length() if value > 0 else 0
        else:
            i = frexp(value)[1] if value > 0.0 else 0
        counts = self.counts
        counts[i] = counts.get(i, 0) + 1
        self.n += 1
        self.total += value

    def freeze(self) -> HistogramSummary:
        """Immutable snapshot with deterministic (sorted) bucket order."""
        return HistogramSummary(
            buckets=tuple(sorted(self.counts.items())),
            n=self.n,
            total=self.total,
        )


@dataclass(frozen=True)
class HistogramSummary:
    """Frozen view of a :class:`LogHistogram`.

    ``buckets`` is a sorted tuple of ``(exponent, count)`` pairs; bucket
    ``e`` covers ``[2**(e-1), 2**e)``.  Quantiles return the *upper edge* of
    the bucket containing the requested rank, so they are conservative to at
    most a factor of two — the resolution the paper-scale sweeps need.
    """

    buckets: tuple[tuple[int, int], ...] = ()
    n: int = 0
    total: float = 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket edge at cumulative fraction ``q`` (0 for empty)."""
        if self.n <= 0:
            return 0.0
        target = q * self.n
        seen = 0
        for exponent, count in self.buckets:
            seen += count
            if seen >= target:
                return 2.0 ** exponent
        return 2.0 ** self.buckets[-1][0]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    @property
    def max_edge(self) -> float:
        """Upper edge of the highest occupied bucket."""
        return 2.0 ** self.buckets[-1][0] if self.buckets else 0.0

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "total": self.total,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max_edge,
            "buckets": [list(b) for b in self.buckets],
        }


@dataclass(frozen=True)
class HotSpot:
    """One contention site: wait time accumulated at a receiving rank pair.

    ``source``/``dest`` are world ranks; the sentinel pair ``(-1, -1)`` is the
    overflow site that absorbs accounting once the per-run site table reaches
    its cap (so memory stays bounded on adversarial traffic patterns).
    ``messages`` and ``nbytes`` count only the messages that actually caused
    waiting — fully-hidden traffic never registers here.
    """

    link: str
    source: int
    dest: int
    wait_s: float
    messages: int
    nbytes: int

    def as_dict(self) -> dict:
        return {
            "link": self.link,
            "source": self.source,
            "dest": self.dest,
            "wait_s": self.wait_s,
            "messages": self.messages,
            "nbytes": self.nbytes,
        }


@dataclass(frozen=True, eq=True)
class TraceStats:
    """Immutable snapshot of a run's streaming statistics.

    Attached to ``TraceSummary.stats`` by live simulations (``None`` for
    summaries rebuilt from the persistent cache — the windows are not
    serialised, only the top-K hot spots are).  All fields are excluded from
    ``TraceSummary`` equality so cached round-trips still compare equal.
    """

    n_ranks: int = 0
    #: Largest virtual time observed (pinned to the makespan at finalize).
    horizon_s: float = 0.0
    #: Width of one timeline window in the normalised snapshot.
    window_s: float = 0.0
    latency_by_link: dict[str, HistogramSummary] = field(default_factory=dict)
    size_by_link: dict[str, HistogramSummary] = field(default_factory=dict)
    flops_by_kernel: dict[str, HistogramSummary] = field(default_factory=dict)
    #: rank -> per-window busy seconds (only ranks with any activity).
    busy_timeline: dict[int, tuple[float, ...]] = field(default_factory=dict)
    #: rank -> per-window p2p wait seconds.
    wait_timeline: dict[int, tuple[float, ...]] = field(default_factory=dict)
    #: rank -> per-window received bytes (exact integers).
    recv_bytes_timeline: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: link -> traffic class ("p2p" or a collective tag) ->
    #: {"messages", "nbytes", "wait_s"} totals.
    link_traffic: dict[str, dict[str, dict]] = field(default_factory=dict)
    hot_spots: tuple[HotSpot, ...] = ()

    def as_dict(self) -> dict:
        return {
            "n_ranks": self.n_ranks,
            "horizon_s": self.horizon_s,
            "window_s": self.window_s,
            "latency_by_link": {
                k: v.as_dict() for k, v in self.latency_by_link.items()
            },
            "size_by_link": {k: v.as_dict() for k, v in self.size_by_link.items()},
            "flops_by_kernel": {
                k: v.as_dict() for k, v in self.flops_by_kernel.items()
            },
            "busy_timeline": {str(r): list(v) for r, v in self.busy_timeline.items()},
            "wait_timeline": {str(r): list(v) for r, v in self.wait_timeline.items()},
            "recv_bytes_timeline": {
                str(r): list(v) for r, v in self.recv_bytes_timeline.items()
            },
            "link_traffic": self.link_traffic,
            "hot_spots": [h.as_dict() for h in self.hot_spots],
        }


class StreamingTraceStats:
    """Single-pass accumulator fed inline by the trace recording hot path.

    The three public callbacks — :meth:`on_message`, :meth:`on_flops`,
    :meth:`on_tick` — are written for the per-event budget of the engine
    benchmarks: bound locals, dict upserts, no helper calls except the
    timeline adds.  ``on_tick`` only advances the time horizon (a max), so
    backend-specific dispatch patterns cannot perturb the snapshot; the
    executor's ``finalize(makespan)`` pins the horizon regardless.
    """

    def __init__(
        self,
        n_ranks: int,
        *,
        n_windows: int = 64,
        base_window_s: float = 1e-6,
        top_k: int = 8,
        max_sites: int = 65536,
    ) -> None:
        self.n_ranks = n_ranks
        self.top_k = top_k
        self.horizon = 0.0
        #: Next virtual time at which the scheduler should call
        #: :meth:`on_tick`; geometric stride keeps the tick count
        #: logarithmic in the makespan.
        self.next_tick = 0.0
        self._max_sites = max_sites
        self._lat: list[LogHistogram] = [LogHistogram() for _ in LinkClass]
        self._size: list[LogHistogram] = [LogHistogram() for _ in LinkClass]
        self._kernels: dict[str, LogHistogram] = {}
        self._timeline = WindowedTimeline(
            n_ranks, n_windows=n_windows, base_s=base_window_s
        )
        #: (link index, source, dest) -> [wait_s, messages, nbytes]; only
        #: messages with wait_s > 0 are accounted, capped at ``max_sites``
        #: entries with an overflow slot per link.
        self._sites: dict[tuple[int, int, int], list] = {}
        #: (link index, traffic class) -> [messages, nbytes, wait_s].
        self._traffic: dict[tuple[int, str], list] = {}

    # ------------------------------------------------------------ hot path
    def on_message(
        self,
        source: int,
        dest: int,
        nbytes: int,
        link_idx: int,
        tag: str,
        send_time: float,
        recv_time: float,
        wait_s: float,
    ) -> None:
        """Observe one recorded message (called inline, single writer)."""
        h = self._size[link_idx]
        counts = h.counts
        i = nbytes.bit_length()
        counts[i] = counts.get(i, 0) + 1
        h.n += 1
        h.total += nbytes
        if recv_time > send_time:
            lat = recv_time - send_time
            h = self._lat[link_idx]
            counts = h.counts
            i = frexp(lat)[1]
            counts[i] = counts.get(i, 0) + 1
            h.n += 1
            h.total += lat
        cls = tag if tag in COLLECTIVE_TAGS else "p2p"
        traffic = self._traffic
        tkey = (link_idx, cls)
        ent = traffic.get(tkey)
        if ent is None:
            ent = traffic[tkey] = [0, 0, 0.0]
        ent[0] += 1
        ent[1] += nbytes
        timed = recv_time > 0.0
        waited = wait_s > 0.0
        if timed or waited:
            # Inlined timeline update: bytes and wait share the window at
            # ``recv_time``, so one row lookup and one division cover both
            # (the separate add_bytes/add_wait calls cost ~2x on this path).
            # Collective tree edges carry no absolute times (recv_time 0.0)
            # and are excluded from the bytes timeline, matching what an
            # event replay can reconstruct.
            tl = self._timeline
            row = tl._rows.get(dest)
            if row is None:
                row = tl._seed(dest, recv_time)
            width = row[0]
            i = int(recv_time / width)
            if i >= tl.n_windows:
                width = tl._grow(row, recv_time)
                i = int(recv_time / width)
            if timed:
                row[3][i] += nbytes
                if recv_time > self.horizon:
                    self.horizon = recv_time
            if waited:
                row[2][i] += wait_s
                ent[2] += wait_s
                sites = self._sites
                skey = (link_idx, source, dest)
                site = sites.get(skey)
                if site is None:
                    if len(sites) < self._max_sites:
                        site = sites[skey] = [0.0, 0, 0]
                    else:
                        skey = (link_idx, -1, -1)
                        site = sites.get(skey)
                        if site is None:
                            site = sites[skey] = [0.0, 0, 0]
                site[0] += wait_s
                site[1] += 1
                site[2] += nbytes

    def on_flops(
        self,
        rank: int,
        flops: float,
        kernel: str,
        seconds: float,
        end_time: float | None,
    ) -> None:
        """Observe one flop charge (``end_time`` None when unknown)."""
        h = self._kernels.get(kernel)
        if h is None:
            h = self._kernels[kernel] = LogHistogram()
        counts = h.counts
        i = frexp(flops)[1]
        counts[i] = counts.get(i, 0) + 1
        h.n += 1
        h.total += flops
        if end_time is not None and seconds > 0.0:
            # Inlined WindowedTimeline.add_busy (hot path, see on_message).
            tl = self._timeline
            row = tl._rows.get(rank)
            if row is None:
                row = tl._seed(rank, end_time)
            width = row[0]
            i = int(end_time / width)
            if i >= tl.n_windows:
                width = tl._grow(row, end_time)
                i = int(end_time / width)
            row[1][i] += seconds
            if end_time > self.horizon:
                self.horizon = end_time

    def on_tick(self, now: float) -> float:
        """Advance the horizon from the scheduler; returns the next tick time.

        Max-only and therefore insensitive to how often (or from which
        backend) it is called — any divergence in tick patterns washes out
        because :meth:`finalize` pins the horizon to the makespan.
        """
        if now > self.horizon:
            self.horizon = now
        nxt = now * 1.25 + 1e-4
        self.next_tick = nxt
        return nxt

    # ---------------------------------------------------------- aggregation
    def finalize(self, makespan: float) -> None:
        """Pin the horizon to the run's makespan (called by the executor)."""
        if makespan > self.horizon:
            self.horizon = makespan

    def top_hotspots(self) -> tuple[HotSpot, ...]:
        """Top-K contention sites by accumulated wait, deterministic order."""
        link_names = [k.value for k in LinkClass]
        ranked = sorted(
            self._sites.items(),
            key=lambda kv: (-kv[1][0], kv[0][0], kv[0][1], kv[0][2]),
        )
        return tuple(
            HotSpot(
                link=link_names[link_idx],
                source=source,
                dest=dest,
                wait_s=vals[0],
                messages=vals[1],
                nbytes=vals[2],
            )
            for (link_idx, source, dest), vals in ranked[: self.top_k]
        )

    def snapshot(self) -> TraceStats:
        """Freeze every accumulator into an immutable :class:`TraceStats`."""
        link_names = [k.value for k in LinkClass]
        busy, wait, nbytes = self._timeline.snapshot(self.horizon)
        traffic: dict[str, dict[str, dict]] = {}
        for (link_idx, cls), (messages, total_bytes, wait_s) in sorted(
            self._traffic.items()
        ):
            traffic.setdefault(link_names[link_idx], {})[cls] = {
                "messages": messages,
                "nbytes": total_bytes,
                "wait_s": wait_s,
            }
        return TraceStats(
            n_ranks=self.n_ranks,
            horizon_s=self.horizon,
            window_s=self._timeline.snapshot_width(self.horizon),
            latency_by_link={
                link_names[i]: h.freeze() for i, h in enumerate(self._lat) if h.n
            },
            size_by_link={
                link_names[i]: h.freeze() for i, h in enumerate(self._size) if h.n
            },
            flops_by_kernel={k: h.freeze() for k, h in sorted(self._kernels.items())},
            busy_timeline=busy,
            wait_timeline=wait,
            recv_bytes_timeline=nbytes,
            link_traffic=traffic,
            hot_spots=self.top_hotspots(),
        )


def stats_from_events(
    events, *, n_ranks: int, makespan: float, **kwargs
) -> TraceStats:
    """Recompute streaming statistics from a ``record_messages=True`` stream.

    Replays the event tuples through the *same* :class:`StreamingTraceStats`
    code path, so every statistic derivable from the retained events —
    latency and size histograms, per-kernel flop histograms, the
    received-bytes timeline and the per-link traffic counts — matches the
    online snapshot bit for bit (the equivalence test asserts this).

    Event tuples do not carry per-receive wait times or flop end times (the
    pinned event format predates this layer), so the wait-derived statistics
    — hot spots, the wait and busy timelines, the ``wait_s`` traffic column —
    come back empty here; the equivalence suite covers those by comparing
    recording against non-recording runs and the two engine backends instead.
    """
    stats = StreamingTraceStats(n_ranks, **kwargs)
    on_message = stats.on_message
    on_flops = stats.on_flops
    for event in events:
        kind = event[0]
        if kind == "message":
            rec = event[1]
            on_message(
                rec.source,
                rec.dest,
                rec.nbytes,
                rec.link.index,
                rec.tag,
                rec.send_time,
                rec.recv_time,
                0.0,
            )
        elif kind == "flops":
            on_flops(event[1], event[2], event[3], 0.0, None)
    stats.finalize(makespan)
    return stats.snapshot()
