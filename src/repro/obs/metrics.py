"""Operational metrics for the simulation service tier.

Where :class:`~repro.obs.stats.StreamingTraceStats` observes *virtual* time
inside a simulation, :class:`ServiceMetrics` observes *wall-clock* behaviour
of the ``repro serve`` process: request latency per operation, queue depth at
enqueue, and batch sizes at flush — all as bounded log-bucketed histograms,
never per-request records.

All observation points run on the server's asyncio event loop (the blocking
simulation work happens in an executor, but the measurements bracket it from
the loop), so like the trace layer this is single-writer and lock-free.

:meth:`ServiceMetrics.maybe_log` emits a single-line structured JSON log
record at most every ``log_every_s`` wall seconds — cheap enough to call per
request, greppable in service logs (``event=service-metrics``).
"""

from __future__ import annotations

import json
import logging
import time

from repro.obs.stats import LogHistogram

__all__ = ["ServiceMetrics"]

logger = logging.getLogger("repro.service")


class ServiceMetrics:
    """Bounded wall-clock metrics for one service process.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``; only
    used for log pacing — latencies are measured by the caller).
    """

    def __init__(self, *, log_every_s: float = 60.0, clock=time.monotonic) -> None:
        self.log_every_s = log_every_s
        self._clock = clock
        self._last_log = clock()
        #: op name -> latency histogram (seconds).
        self._latency: dict[str, LogHistogram] = {}
        self._latency_max: dict[str, float] = {}
        self._queue_depth = LogHistogram()
        self._queue_depth_max = 0
        self._batch_size = LogHistogram()
        self._batch_size_max = 0

    # ------------------------------------------------------------- observe
    def observe_request(self, op: str, seconds: float) -> None:
        """Record the wall latency of one handled request."""
        hist = self._latency.get(op)
        if hist is None:
            hist = self._latency[op] = LogHistogram()
        hist.add(seconds)
        if seconds > self._latency_max.get(op, 0.0):
            self._latency_max[op] = seconds

    def observe_queue_depth(self, depth: int) -> None:
        """Record the pending-queue depth seen at enqueue time."""
        self._queue_depth.add(depth)
        if depth > self._queue_depth_max:
            self._queue_depth_max = depth

    def observe_batch(self, size: int) -> None:
        """Record the size of one simulation batch at flush time."""
        self._batch_size.add(size)
        if size > self._batch_size_max:
            self._batch_size_max = size

    # -------------------------------------------------------------- export
    def as_dict(self) -> dict:
        """JSON-safe snapshot (nested under the stats reply's "metrics" key)."""

        def _quantiles(hist: LogHistogram, maximum) -> dict:
            frozen = hist.freeze()
            return {
                "n": frozen.n,
                "mean": frozen.mean,
                "p50": frozen.p50,
                "p95": frozen.p95,
                "p99": frozen.p99,
                "max": maximum,
            }

        return {
            "request_latency_s": {
                op: _quantiles(hist, self._latency_max.get(op, 0.0))
                for op, hist in sorted(self._latency.items())
            },
            "queue_depth": _quantiles(self._queue_depth, self._queue_depth_max),
            "batch_size": _quantiles(self._batch_size, self._batch_size_max),
        }

    def maybe_log(self, extra: dict | None = None) -> bool:
        """Emit one structured log line if ``log_every_s`` has elapsed."""
        now = self._clock()
        if now - self._last_log < self.log_every_s:
            return False
        self._last_log = now
        record = {"event": "service-metrics", **self.as_dict()}
        if extra:
            record.update(extra)
        logger.info("%s", json.dumps(record, sort_keys=True))
        return True
